#include "src/smt/cdcl.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/smt/eval.h"
#include "src/smt/ground.h"
#include "src/support/check.h"
#include "src/support/stopwatch.h"

namespace noctua::smt {

// ---------------------------------------------------------------------------
// CdclSearch: the propositional core.
// ---------------------------------------------------------------------------

int CdclSearch::NewVar() {
  int v = num_vars();
  value_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();  // positive literal 2v
  watches_.emplace_back();  // negative literal 2v+1
  return v;
}

int CdclSearch::LitValue(int lit) const {
  int8_t v = value_[VarOf(lit)];
  if (v < 0) {
    return -1;
  }
  return (v == 1) != IsNeg(lit) ? 1 : 0;
}

void CdclSearch::AddClause(std::vector<int> lits, bool removable) {
  NOCTUA_CHECK_MSG(decision_level() == 0, "AddClause is a level-0 operation");
  if (unsat_) {
    return;
  }
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<int> kept;
  kept.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    // Sorted order puts 2v next to 2v+1: a tautology makes the clause vacuous.
    if (i + 1 < lits.size() && lits[i + 1] == Negate(lits[i])) {
      return;
    }
    int lv = LitValue(lits[i]);
    if (lv == 1) {
      return;  // satisfied at level 0
    }
    if (lv == -1) {
      kept.push_back(lits[i]);
    }
    // level-0 false literals are dropped
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    if (!Enqueue(kept[0], -1)) {
      unsat_ = true;
    }
    return;
  }
  AttachClause(std::move(kept), removable);
}

void CdclSearch::AddEncodingClause(std::vector<int> lits) {
  NOCTUA_CHECK_MSG(lits.size() >= 2, "encoding clause must have >= 2 literals");
  for (int lit : lits) {
    NOCTUA_CHECK_MSG(LitValue(lit) == -1, "encoding clause over an assigned literal");
  }
  AttachClause(std::move(lits));
}

int CdclSearch::AttachClause(std::vector<int> lits, bool removable) {
  int ci = static_cast<int>(clauses_.size());
  watches_[lits[0]].push_back(ci);
  watches_[lits[1]].push_back(ci);
  clauses_.push_back(Clause{std::move(lits), removable, removable ? cla_inc_ : 0.0});
  return ci;
}

bool CdclSearch::Enqueue(int lit, int reason_clause) {
  int lv = LitValue(lit);
  if (lv == 0) {
    return false;
  }
  if (lv == 1) {
    return true;
  }
  int v = VarOf(lit);
  value_[v] = IsNeg(lit) ? 0 : 1;
  level_[v] = decision_level();
  reason_[v] = reason_clause;
  trail_.push_back(lit);
  ++nodes_;
  return true;
}

int CdclSearch::Propagate() {
  while (qhead_ < trail_.size()) {
    int p = trail_[qhead_++];  // p just became true...
    int fl = Negate(p);        // ...so fl just became false
    std::vector<int>& wl = watches_[fl];
    size_t i = 0;
    size_t j = 0;
    int conflict = -1;
    for (; i < wl.size(); ++i) {
      int ci = wl[i];
      std::vector<int>& c = clauses_[ci].lits;
      // Keep the falsified watch at position 1.
      if (c[0] == fl) {
        std::swap(c[0], c[1]);
      }
      if (LitValue(c[0]) == 1) {
        wl[j++] = ci;  // satisfied by the other watch
        continue;
      }
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (LitValue(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[c[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;  // watch migrated to the non-false literal
      }
      wl[j++] = ci;  // all other literals false: unit or conflict
      if (LitValue(c[0]) == 0) {
        conflict = ci;
        ++i;
        break;
      }
      Enqueue(c[0], ci);
    }
    while (i < wl.size()) {
      wl[j++] = wl[i++];
    }
    wl.resize(j);
    if (conflict != -1) {
      qhead_ = trail_.size();  // drain: the conflict invalidates pending propagation
      return conflict;
    }
  }
  return -1;
}

void CdclSearch::Decide(int lit) {
  NOCTUA_CHECK_MSG(LitValue(lit) == -1, "deciding an assigned literal");
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  Enqueue(lit, -1);
}

void CdclSearch::BacktrackTo(int level) {
  if (decision_level() <= level) {
    return;
  }
  size_t keep = static_cast<size_t>(trail_lim_[level]);
  for (size_t i = trail_.size(); i > keep; --i) {
    int v = VarOf(trail_[i - 1]);
    value_[v] = -1;
    reason_[v] = -1;
  }
  trail_.resize(keep);
  trail_lim_.resize(level);
  qhead_ = keep;
}

void CdclSearch::BumpVar(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
}

void CdclSearch::BumpClause(int ci) {
  Clause& c = clauses_[ci];
  if (!c.removable) {
    return;  // only removable clauses compete for DB slots
  }
  c.activity += cla_inc_;
  if (c.activity > 1e100) {
    for (Clause& cl : clauses_) {
      cl.activity *= 1e-100;
    }
    cla_inc_ *= 1e-100;
  }
}

CdclSearch::Conflict CdclSearch::Analyze(const std::vector<int>& conflict_lits) {
  const int clevel = decision_level();
  NOCTUA_CHECK_MSG(clevel > 0, "conflict analysis at level 0");
  std::vector<int> learned{0};  // slot 0 is the asserting literal, filled below
  int counter = 0;
  int p = -1;
  size_t idx = trail_.size();
  const std::vector<int>* reason_lits = &conflict_lits;
  // Resolve backwards along the trail until exactly one literal of the current decision
  // level remains: the first unique implication point.
  for (;;) {
    for (int q : *reason_lits) {
      if (q == p) {
        continue;  // the implied literal of p's reason clause
      }
      int v = VarOf(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] == clevel) {
          ++counter;
        } else {
          learned.push_back(q);
        }
      }
    }
    do {
      --idx;
    } while (seen_[VarOf(trail_[idx])] == 0);
    p = trail_[idx];
    seen_[VarOf(p)] = 0;
    --counter;
    if (counter == 0) {
      break;
    }
    int rc = reason_[VarOf(p)];
    NOCTUA_CHECK_MSG(rc >= 0, "non-UIP current-level literal without a reason");
    BumpClause(rc);  // the clause earned its keep: shield it from DB reduction
    reason_lits = &clauses_[rc].lits;
  }
  learned[0] = Negate(p);
  Conflict result;
  if (learned.size() > 1) {
    // Move the highest-level remaining literal to slot 1: it defines the backjump level
    // and must hold a watch so backtracking past it re-wakes the clause.
    size_t mi = 1;
    for (size_t k = 2; k < learned.size(); ++k) {
      if (level_[VarOf(learned[k])] > level_[VarOf(learned[mi])]) {
        mi = k;
      }
    }
    std::swap(learned[1], learned[mi]);
    result.backjump_level = level_[VarOf(learned[1])];
  }
  for (size_t k = 1; k < learned.size(); ++k) {
    seen_[VarOf(learned[k])] = 0;
  }
  result.learned = std::move(learned);
  var_inc_ /= 0.95;   // decay: recent conflicts weigh more
  cla_inc_ /= 0.999;  // clause activities decay slower — DB reduction looks further back
  return result;
}

void CdclSearch::ResolveConflict(const std::vector<int>& conflict_lits) {
  ++conflicts_;
  Conflict c = Analyze(conflict_lits);
  BacktrackTo(c.backjump_level);
  ++learned_;
  if (c.learned.size() == 1) {
    bool ok = Enqueue(c.learned[0], -1);
    NOCTUA_CHECK_MSG(ok, "asserting literal false after backjump");
  } else {
    int ci = AttachClause(std::move(c.learned), /*removable=*/true);
    bool ok = Enqueue(clauses_[ci].lits[0], ci);
    NOCTUA_CHECK_MSG(ok, "asserting literal false after backjump");
  }
}

void CdclSearch::ConfigureRestarts(uint64_t unit, std::function<void()> on_restart) {
  restart_unit_ = unit;
  on_restart_ = std::move(on_restart);
  conflicts_at_restart_ = conflicts_;
}

namespace {

// The Luby sequence 1,1,2,1,1,2,4,1,... (0-indexed), the classic universal restart
// schedule: total work within a constant factor of any fixed schedule.
uint64_t LubySeq(uint64_t x) {
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return uint64_t{1} << seq;
}

}  // namespace

void CdclSearch::MaybeRestart() {
  if (restart_unit_ == 0 || unsat_) {
    return;
  }
  if (conflicts_ - conflicts_at_restart_ < LubySeq(restarts_) * restart_unit_) {
    return;
  }
  BacktrackTo(0);
  ++restarts_;
  conflicts_at_restart_ = conflicts_;
  ReduceDb();
  if (on_restart_) {
    on_restart_();  // learned clauses survive; the hook may inject more at level 0
  }
}

void CdclSearch::ReduceDb() {
  NOCTUA_CHECK_MSG(decision_level() == 0, "DB reduction is a level-0 operation");
  // Reasons of level-0 assignments must survive: Analyze may still walk them.
  std::vector<char> is_reason(clauses_.size(), 0);
  for (int lit : trail_) {
    int rc = reason_[VarOf(lit)];
    if (rc >= 0) {
      is_reason[static_cast<size_t>(rc)] = 1;
    }
  }
  std::vector<int> candidates;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    const Clause& c = clauses_[i];
    if (c.removable && c.lits.size() > 2 && is_reason[i] == 0) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  // Reduce only once the removable set is worth the rebuild; keep the busier half.
  constexpr size_t kReduceMin = 200;
  if (candidates.size() < kReduceMin) {
    return;
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    double aa = clauses_[static_cast<size_t>(a)].activity;
    double bb = clauses_[static_cast<size_t>(b)].activity;
    return aa != bb ? aa < bb : a > b;  // least active first; newer dropped on ties
  });
  std::vector<char> drop(clauses_.size(), 0);
  size_t n_drop = candidates.size() / 2;
  for (size_t i = 0; i < n_drop; ++i) {
    drop[static_cast<size_t>(candidates[i])] = 1;
  }
  std::vector<int> remap(clauses_.size(), -1);
  std::vector<Clause> kept;
  kept.reserve(clauses_.size() - n_drop);
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (drop[i] == 0) {
      remap[i] = static_cast<int>(kept.size());
      kept.push_back(std::move(clauses_[i]));
    }
  }
  clauses_ = std::move(kept);
  for (std::vector<int>& wl : watches_) {
    wl.clear();
  }
  for (size_t i = 0; i < clauses_.size(); ++i) {
    // Watch positions 0/1 are maintained in place by propagation, so re-watching the
    // same positions reproduces the exact watch state the surviving clauses had.
    watches_[clauses_[i].lits[0]].push_back(static_cast<int>(i));
    watches_[clauses_[i].lits[1]].push_back(static_cast<int>(i));
  }
  for (size_t v = 0; v < reason_.size(); ++v) {
    if (reason_[v] >= 0) {
      reason_[v] = remap[static_cast<size_t>(reason_[v])];
      NOCTUA_CHECK_MSG(reason_[v] >= 0, "DB reduction dropped a live reason clause");
    }
  }
  forgotten_ += n_drop;
}

int CdclSearch::PickBranchVar() const {
  int best = -1;
  for (int v = 0; v < num_vars(); ++v) {
    if (value_[v] < 0 && (best == -1 || activity_[v] > activity_[best])) {
      best = v;
    }
  }
  return best;
}

SolveResult CdclSearch::Solve(const std::function<TheoryResult()>& theory,
                              const std::function<bool()>& budget) {
  if (unsat_) {
    return SolveResult::kUnsat;
  }
  for (;;) {
    int confl = Propagate();
    if (confl != -1) {
      if (decision_level() == 0) {
        unsat_ = true;
        return SolveResult::kUnsat;
      }
      BumpClause(confl);
      // ResolveConflict may attach clauses (invalidating references into clauses_), so
      // hand it a copy of the conflicting literals.
      ResolveConflict(std::vector<int>(clauses_[confl].lits));
      MaybeRestart();
      continue;
    }
    if (budget && budget()) {
      return SolveResult::kUnknown;
    }
    if (theory) {
      TheoryResult tr = theory();
      if (tr.verdict == TheoryVerdict::kSat) {
        return SolveResult::kSat;
      }
      if (tr.verdict == TheoryVerdict::kConsistent && tr.decision >= 0) {
        Decide(tr.decision);
        continue;
      }
      if (tr.verdict == TheoryVerdict::kConflict) {
        // The nogood is false under the current assignment, but its literals may all
        // live below the current level; analysis requires a current-level literal, so
        // first backjump to the deepest level the nogood mentions.
        int maxl = 0;
        for (int q : tr.nogood) {
          maxl = std::max(maxl, level_[VarOf(q)]);
        }
        if (tr.nogood.empty() || maxl == 0) {
          unsat_ = true;  // falsified by level-0 facts alone
          return SolveResult::kUnsat;
        }
        BacktrackTo(maxl);
        ResolveConflict(tr.nogood);
        MaybeRestart();
        continue;
      }
    }
    int v = PickBranchVar();
    if (v == -1) {
      // Complete conflict-free assignment. With a theory hook this is unreachable in
      // practice (a total assignment evaluates every assertion to a known value, so the
      // hook answers kSat or kConflict), but it is the sat condition for pure SAT.
      return SolveResult::kSat;
    }
    // Always try "true" first: for the direct [atom = value] encoding a positive decision
    // fixes an atom and lets exactly-one clauses propagate the siblings false.
    Decide(PosLit(v));
  }
}

// ---------------------------------------------------------------------------
// CdclBackend: lazy direct encoding + substitute-and-simplify theory.
// ---------------------------------------------------------------------------

namespace {

// Renames elements a <-> b of `model`'s Ref sort throughout `t`, rebuilding through the
// factory's smart constructors (hash-consing keeps unchanged subterms shared). For a
// symmetry-clean model this renaming is an automorphism of the grounded formula, so the
// image of an entailed nogood is itself entailed.
Term PermuteRefs(TermFactory& f, Term t, int model, int a, int b) {
  if (t->kind() == TermKind::kRefLit) {
    if (t->sort()->is_ref() && t->sort()->model_id() == model) {
      int64_t i = t->int_payload();
      int64_t ni = i == a ? b : (i == b ? a : i);
      if (ni != i) {
        return f.RefLit(t->sort(), static_cast<int>(ni));
      }
    }
    return t;
  }
  if (t->children().empty()) {
    return t;
  }
  std::vector<Term> kids;
  kids.reserve(t->children().size());
  bool changed = false;
  for (Term c : t->children()) {
    Term n = PermuteRefs(f, c, model, a, b);
    changed = changed || n != c;
    kids.push_back(n);
  }
  return changed ? RebuildTerm(f, t, std::move(kids)) : t;
}

}  // namespace

SolveResult CdclBackend::DoCheck(TermFactory& factory, const std::vector<Term>& assertions) {
  Stopwatch watch;
  stats_ = SolverStats{};
  model_.values.clear();
  const Budget& budget = options_.budget;
  Deadline deadline = budget.timeout_seconds > 0 && !budget.deterministic
                          ? Deadline::AfterSeconds(budget.timeout_seconds)
                          : Deadline::Never();

  std::vector<Term> pending;
  bool feasible;
  if (IncrementalEnabled(options_)) {
    feasible = inc_ground_.Ground(factory, options_.scope, assertions, &pending,
                                  &stats_.incremental_reuse_hits, &stats_.binders_expanded);
  } else {
    Grounder grounder(&factory, options_.scope);
    feasible = GroundAndFlatten(grounder, factory, assertions, &pending);
    stats_.binders_expanded = grounder.binders_expanded();
  }
  if (!feasible) {
    stats_.seconds = watch.ElapsedSeconds();
    AccumulateSolverSharedCounts(stats_);
    return SolveResult::kUnsat;
  }
  if (pending.empty()) {
    stats_.seconds = watch.ElapsedSeconds();
    AccumulateSolverSharedCounts(stats_);
    return SolveResult::kSat;
  }

  ValueDomains domains;
  domains.Harvest(pending, options_.max_int_domain, options_.max_string_domain);

  SymmetryBreaker symmetry;
  if (SymmetryEnabled(options_)) {
    symmetry.Analyze(assertions, pending, options_.scope);
  }

  // Per-assertion support approximation: the constants an assertion mentions. Every atom
  // that can influence its residual — including array cells materialized mid-search —
  // has its base constant in this set, so nogoods quantify over assigned atoms with a
  // mentioned base, never the whole registry.
  std::vector<std::unordered_set<Term>> consts_of(pending.size());
  for (size_t ai = 0; ai < pending.size(); ++ai) {
    std::unordered_set<Term> seen;
    std::vector<Term> stack{pending[ai]};
    while (!stack.empty()) {
      Term t = stack.back();
      stack.pop_back();
      if (!seen.insert(t).second) {
        continue;
      }
      if (t->kind() == TermKind::kConst) {
        consts_of[ai].insert(t);
      }
      for (Term c : t->children()) {
        stack.push_back(c);
      }
    }
  }
  auto base_const = [](Term atom) {
    while (atom->kind() != TermKind::kConst) {
      atom = atom->child(0);
    }
    return atom;
  };

  // Lazy direct encoding: atoms get their variable block (one per candidate value, tied
  // by exactly-one clauses) the first time they survive in a residual. An atom with a
  // single candidate value gets no variables at all — it is a fact, substituted always.
  CdclSearch search;
  std::vector<Term> atom_terms;            // discovered atoms, first-appearance order
  std::vector<std::vector<Term>> lits_of;  // atom id -> candidate literal terms
  std::vector<std::vector<int>> vars_of;   // atom id -> variable block ({} for facts)
  std::unordered_map<Term, int> atom_id;
  std::unordered_map<Term, Term> forced;   // the facts, as a standing substitution
  // Variable -> (atom id, value index): the decode table the symmetric-nogood multiplier
  // uses to lift propositional nogood literals back to [atom = value] facts.
  std::vector<std::pair<int, int>> var_origin;

  auto ensure_atom = [&](Term atom) -> int {
    auto it = atom_id.find(atom);
    if (it != atom_id.end()) {
      return it->second;
    }
    int id = static_cast<int>(atom_terms.size());
    atom_id.emplace(atom, id);
    atom_terms.push_back(atom);
    std::vector<Term> lits = domains.LiteralsFor(factory, options_.scope, atom);
    std::vector<int> block;
    if (lits.size() == 1) {
      forced.emplace(atom, lits[0]);
    } else {
      block.reserve(lits.size());
      std::vector<int> alo;
      alo.reserve(lits.size());
      for (size_t j = 0; j < lits.size(); ++j) {
        int v = search.NewVar();
        block.push_back(v);
        alo.push_back(CdclSearch::PosLit(v));
        var_origin.emplace_back(id, static_cast<int>(j));
      }
      // At least one value, at most one value (pairwise; domains are bounded and small).
      search.AddEncodingClause(std::move(alo));
      for (size_t j = 0; j < block.size(); ++j) {
        for (size_t k = j + 1; k < block.size(); ++k) {
          search.AddEncodingClause(
              {CdclSearch::NegLit(block[j]), CdclSearch::NegLit(block[k])});
        }
      }
    }
    lits_of.push_back(std::move(lits));
    vars_of.push_back(std::move(block));
    return id;
  };

  // Symmetry reduction, propositional form. The governed Ref constants of each clean
  // model get their variable blocks eagerly (at level 0, where AddClause is legal) and
  // value-precedence canonicity is compiled to clauses:
  //   * rank 0 is pinned to element #0 (unit);
  //   * rank t can never exceed element #t (units excluding v > t);
  //   * rank t taking element v >= 2 requires some earlier rank to have taken v-1
  //     (v = 1 is subsumed: rank 0 already holds element #0).
  // These clauses are not formula-entailed — they select the lex-leader representative of
  // each model orbit — so they are input (irremovable) clauses, and the learned clauses
  // that resolve against them must never be permuted (see the nogood multiplier below).
  if (symmetry.active()) {
    for (const SymmetryBreaker::Group& g : symmetry.groups()) {
      std::vector<int> blocks;  // flattened [rank][value] -> var, rank-major
      size_t width = 0;
      for (Term c : g.consts) {
        int id = ensure_atom(c);
        if (vars_of[id].empty()) {
          blocks.clear();
          break;  // a forced constant breaks the rank numbering; skip the group
        }
        width = vars_of[id].size();
        blocks.insert(blocks.end(), vars_of[id].begin(), vars_of[id].end());
      }
      if (blocks.empty()) {
        continue;
      }
      auto var_at = [&](size_t rank, size_t v) { return blocks[rank * width + v]; };
      size_t ranks = g.consts.size();
      search.AddClause({CdclSearch::PosLit(var_at(0, 0))});
      stats_.symmetry_pruned += width - 1;
      for (size_t t = 1; t < ranks; ++t) {
        for (size_t v = t + 1; v < width; ++v) {
          search.AddClause({CdclSearch::NegLit(var_at(t, v))});
          ++stats_.symmetry_pruned;
        }
        for (size_t v = 2; v <= t && v < width; ++v) {
          std::vector<int> precede{CdclSearch::NegLit(var_at(t, v))};
          for (size_t j = 0; j < t; ++j) {
            precede.push_back(CdclSearch::PosLit(var_at(j, v - 1)));
          }
          search.AddClause(std::move(precede));
          ++stats_.symmetry_pruned;
        }
      }
    }
  }

  // The symmetric-nogood multiplier: every theory nogood is formula-entailed, and a
  // transposition of a clean model's elements is a formula automorphism, so the permuted
  // image of a nogood is also entailed — queue it and inject at the next restart (level
  // 0, where AddClause is legal). Only theory nogoods qualify: clauses learned by Analyze
  // may resolve against the canonicity clauses above, which are NOT symmetric.
  std::vector<std::vector<int>> sym_queue;
  constexpr size_t kMaxSymNogood = 8;
  constexpr size_t kMaxSymQueue = 256;
  auto queue_symmetric_images = [&](const std::vector<int>& nogood) {
    if (!symmetry.active() || nogood.empty() || nogood.size() > kMaxSymNogood) {
      return;
    }
    for (const SymmetryBreaker::Group& g : symmetry.groups()) {
      int k = options_.scope.RefSize(g.model_id);
      for (int a = 0; a < k && sym_queue.size() < kMaxSymQueue; ++a) {
        for (int b = a + 1; b < k && sym_queue.size() < kMaxSymQueue; ++b) {
          std::vector<int> image;
          image.reserve(nogood.size());
          bool ok = true;
          bool changed = false;
          for (int lit : nogood) {
            int var = CdclSearch::VarOf(lit);
            auto [aid, vidx] = var_origin[var];
            Term patom = PermuteRefs(factory, atom_terms[aid], g.model_id, a, b);
            Term pval = PermuteRefs(factory, lits_of[aid][vidx], g.model_id, a, b);
            if (patom == atom_terms[aid] && pval == lits_of[aid][vidx]) {
              image.push_back(lit);
              continue;
            }
            changed = true;
            int pid = ensure_atom(patom);
            const std::vector<int>& pblock = vars_of[pid];
            const std::vector<Term>& plits = lits_of[pid];
            size_t pj = plits.size();
            for (size_t j = 0; j < plits.size(); ++j) {
              if (plits[j] == pval) {
                pj = j;
                break;
              }
            }
            if (pblock.empty() || pj == plits.size()) {
              ok = false;  // permuted fact, or value outside the permuted atom's domain
              break;
            }
            image.push_back(CdclSearch::NegLit(pblock[pj]));
          }
          if (ok && changed) {
            sym_queue.push_back(std::move(image));
          }
        }
      }
    }
  };

  // The lazy theory: substitute every atom the propositional state has fixed into the
  // assertions and let the simplifier collapse the residuals. Literal false => nogood
  // over the assigned support atoms; all literal true => model found; otherwise suggest
  // deciding the first atom surviving in the first open residual (the model finder's
  // branching rule, which never touches atoms the simplifier eliminated).
  auto theory = [&]() -> TheoryResult {
    for (;;) {
      std::unordered_map<Term, Term> values = forced;
      for (size_t i = 0; i < atom_terms.size(); ++i) {
        const std::vector<int>& block = vars_of[i];
        for (size_t j = 0; j < block.size(); ++j) {
          if (search.value(block[j]) == 1) {
            values.emplace(atom_terms[i], lits_of[i][j]);
            break;
          }
        }
      }
      std::unordered_map<Term, Term> memo;
      std::unordered_map<Term, Term> atom_memo;
      Term branch_atom = nullptr;
      bool all_true = true;
      for (size_t ai = 0; ai < pending.size(); ++ai) {
        ++stats_.evaluations;
        Term r = SubstFixpoint(factory, pending[ai], values, memo);
        if (r->IsBoolLit(true)) {
          continue;
        }
        if (r->IsBoolLit(false)) {
          TheoryResult out;
          out.verdict = TheoryVerdict::kConflict;
          for (size_t i = 0; i < atom_terms.size(); ++i) {
            const std::vector<int>& block = vars_of[i];
            if (block.empty() || consts_of[ai].count(base_const(atom_terms[i])) == 0) {
              continue;
            }
            for (size_t j = 0; j < block.size(); ++j) {
              if (search.value(block[j]) == 1) {
                out.nogood.push_back(CdclSearch::NegLit(block[j]));
                break;
              }
            }
          }
          queue_symmetric_images(out.nogood);
          return out;
        }
        all_true = false;
        if (branch_atom == nullptr) {
          branch_atom = FindFirstAtom(r, atom_memo);
          NOCTUA_CHECK_MSG(branch_atom != nullptr, "undecided residual without atoms");
        }
      }
      if (all_true) {
        return TheoryResult{TheoryVerdict::kSat, {}, -1};
      }
      int id = ensure_atom(branch_atom);
      if (vars_of[id].empty()) {
        continue;  // a fact joined `forced`: substitute it and re-simplify
      }
      for (int var : vars_of[id]) {
        if (search.value(var) == -1) {
          TheoryResult out;
          out.decision = CdclSearch::PosLit(var);
          return out;
        }
      }
      NOCTUA_UNREACHABLE("open residual atom with no decidable value");
    }
  };

  auto over_budget = [&]() {
    if (search.nodes() > budget.max_nodes) {
      return true;
    }
    return deadline.Expired() ||
           (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed));
  };

  // Luby restarts with activity-based DB reduction; the restart hook drains the queued
  // symmetric nogood images (removable: the reducer may forget them again).
  search.ConfigureRestarts(100, [&]() {
    for (std::vector<int>& cl : sym_queue) {
      search.AddClause(std::move(cl), /*removable=*/true);
    }
    sym_queue.clear();
  });

  SolveResult result = search.Solve(theory, over_budget);
  stats_.nodes_visited = search.nodes();
  stats_.num_atoms = atom_terms.size();
  stats_.conflicts = search.conflicts();
  stats_.learned_clauses = search.learned_clauses();
  stats_.restarts = search.restarts();
  stats_.clauses_forgotten = search.clauses_forgotten();
  if (result == SolveResult::kSat) {
    for (size_t i = 0; i < atom_terms.size(); ++i) {
      const std::vector<int>& block = vars_of[i];
      for (size_t j = 0; j < block.size(); ++j) {
        if (search.value(block[j]) == 1) {
          model_.values[GroundAtomName(atom_terms[i])] = lits_of[i][j]->ToString();
          break;
        }
      }
    }
    for (const auto& [atom, lit] : forced) {
      model_.values[GroundAtomName(atom)] = lit->ToString();
    }
  }
  stats_.seconds = watch.ElapsedSeconds();
  AccumulateSolverSharedCounts(stats_);
  return result;
}

}  // namespace noctua::smt
