// Search budgets and backend selection, shared by every solver backend.
//
// Budget is the one struct all backends interpret identically: a wall-clock deadline, a
// node ceiling, and a determinism switch that trades the deadline for machine-independent
// verdicts. BackendKind names the decision procedures that can sit behind the
// SolverBackend interface (backend.h); kAuto defers the choice to the NOCTUA_SOLVER
// environment variable so deployments flip backends without recompiling.
#ifndef SRC_SMT_BUDGET_H_
#define SRC_SMT_BUDGET_H_

#include <cstdint>
#include <string>

namespace noctua::smt {

// How much work one satisfiability check may spend before giving up with kUnknown.
// Exceeding the budget is conservative, never unsound: the verifier restricts the pair.
struct Budget {
  // Wall-clock limit per check (the paper's 2s timeout). <= 0 disables the deadline.
  double timeout_seconds = 2.0;
  // Search-node ceiling. A "node" is one unit of backend work: a DFS assignment for the
  // bounded model finder, a decision or propagation for the CDCL backend. Every backend
  // counts nodes, so this bound is meaningful portfolio-wide.
  uint64_t max_nodes = 50'000'000;
  // Bound the search by max_nodes only, ignoring the wall clock. Searches are
  // deterministic given the term DAG, so with this set the verdict is too — independent
  // of machine speed, CPU contention, or how many verification workers run alongside.
  // Used by tests that assert byte-identical verdicts across thread counts and backends.
  bool deterministic = false;
};

enum class BackendKind : uint8_t {
  kAuto,       // resolve from NOCTUA_SOLVER, defaulting to kDfs
  kDfs,        // the bounded model finder: DFS over atoms with three-valued pruning
  kCdcl,       // ground SAT: unit propagation, watched literals, first-UIP learning
  kPortfolio,  // race dfs and cdcl per query; first decisive verdict wins
};

// Tri-state switch for an individual solver optimization. kAuto defers to the matching
// NOCTUA_* environment knob (which itself defaults to on); kOn/kOff pin the choice in
// code regardless of the environment. Both hot-path optimizations added on top of the
// backends — symmetry reduction and incremental grounding — are verdict-preserving, so
// the toggles exist for A/B measurement and bisection, not for correctness escape
// hatches.
enum class Toggle : uint8_t { kAuto, kOn, kOff };

// Strict parse of a toggle value: exactly "on" or "off". Returns false — leaving *out
// untouched — on anything else, including "auto", "1", "true".
bool ParseToggle(const std::string& value, Toggle* out);

// NOCTUA_SYMMETRY / NOCTUA_INCREMENTAL with the NOCTUA_THREADS parsing discipline: an
// unset variable means on, "on"/"off" are honored, and anything else is rejected with a
// one-shot stderr warning and treated as on (fail-fast on typos, never silently
// absorbed).
bool SymmetryFromEnv();
bool IncrementalFromEnv();

// Lower-case knob value, e.g. "dfs"; "auto" for kAuto.
const char* BackendKindName(BackendKind k);

// Strict parse of a backend name ("dfs", "cdcl", "portfolio"); returns false — leaving
// *out untouched — on anything else, including "auto" (the sentinel is not a knob value).
bool ParseBackendKind(const std::string& name, BackendKind* out);

// The backend NOCTUA_SOLVER selects, with the NOCTUA_THREADS parsing discipline: an
// unset variable means kDfs, a valid name is honored, and anything else is rejected with
// a one-shot stderr warning rather than silently absorbed (fail-fast on typos).
BackendKind BackendKindFromEnv();

// Resolves kAuto through BackendKindFromEnv; concrete kinds pass through.
BackendKind ResolveBackendKind(BackendKind k);

}  // namespace noctua::smt

#endif  // SRC_SMT_BUDGET_H_
