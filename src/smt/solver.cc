#include "src/smt/solver.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/smt/backend.h"  // SymmetryEnabled / IncrementalEnabled
#include "src/smt/ground.h"
#include "src/support/check.h"

namespace noctua::smt {

const char* SolveResultName(SolveResult r) {
  switch (r) {
    case SolveResult::kSat:
      return "sat";
    case SolveResult::kUnsat:
      return "unsat";
    case SolveResult::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string SmtModel::ToString() const {
  std::string out;
  for (const auto& [name, value] : values) {
    out += "  " + name + " = " + value + "\n";
  }
  return out;
}

void ValueDomains::Harvest(const std::vector<Term>& roots, int max_int_domain,
                           int max_string_domain) {
  std::set<int64_t> ints;
  std::set<std::string> strings;
  std::unordered_set<Term> seen;
  std::vector<Term> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    Term t = stack.back();
    stack.pop_back();
    if (!seen.insert(t).second) {
      continue;
    }
    if (t->kind() == TermKind::kIntLit) {
      ints.insert(t->int_payload());
    } else if (t->kind() == TermKind::kStrLit) {
      strings.insert(t->str_payload());
    }
    for (Term c : t->children()) {
      stack.push_back(c);
    }
  }

  // Integer domain: every literal plus its neighbors (enough to cross any < / <= / ==
  // threshold in the formula), plus 0 and 1 so "fresh" quantities exist.
  std::set<int64_t> dom;
  dom.insert(0);
  dom.insert(1);
  for (int64_t v : ints) {
    dom.insert(v);
    dom.insert(v - 1);
    dom.insert(v + 1);
  }
  int_domain_.assign(dom.begin(), dom.end());
  if (static_cast<int>(int_domain_.size()) > max_int_domain) {
    // Keep the values closest to zero: thresholds in application code are small, and
    // small counterexamples are the ones we expect to exist.
    std::sort(int_domain_.begin(), int_domain_.end(), [](int64_t a, int64_t b) {
      int64_t aa = a < 0 ? -a : a;
      int64_t bb = b < 0 ? -b : b;
      return aa != bb ? aa < bb : a < b;
    });
    int_domain_.resize(max_int_domain);
    std::sort(int_domain_.begin(), int_domain_.end());
  }

  // String domain: the formula's literals plus fresh symbols distinct from all of them.
  string_domain_.assign(strings.begin(), strings.end());
  string_domain_.push_back("!fresh_a");
  string_domain_.push_back("!fresh_b");
  if (static_cast<int>(string_domain_.size()) > max_string_domain) {
    string_domain_.resize(max_string_domain);
  }
}

std::vector<Term> ValueDomains::LiteralsFor(TermFactory& f, const Scope& scope,
                                            Term atom) const {
  const Sort& sort = atom->sort();
  std::vector<Term> out;
  if (sort->is_bool()) {
    out = {f.False(), f.True()};
  } else if (sort->is_int()) {
    out.reserve(int_domain_.size());
    for (int64_t v : int_domain_) {
      out.push_back(f.IntLit(v));
    }
  } else if (sort->is_string()) {
    out.reserve(string_domain_.size());
    for (const std::string& s : string_domain_) {
      out.push_back(f.StrLit(s));
    }
  } else if (sort->is_ref()) {
    int n = scope.RefSize(sort->model_id());
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
      out.push_back(f.RefLit(sort, i));
    }
  } else {
    NOCTUA_UNREACHABLE("atom of composite sort");
  }
  return out;
}

std::vector<Value> ValueDomains::ValuesFor(const Scope& scope, const Sort& sort) const {
  std::vector<Value> out;
  if (sort->is_bool()) {
    out = {Value::Bool(false), Value::Bool(true)};
  } else if (sort->is_int()) {
    out.reserve(int_domain_.size());
    for (int64_t v : int_domain_) {
      out.push_back(Value::Int(v));
    }
  } else if (sort->is_string()) {
    out.reserve(string_domain_.size());
    for (const std::string& s : string_domain_) {
      out.push_back(Value::Str(s));
    }
  } else if (sort->is_ref()) {
    int n = scope.RefSize(sort->model_id());
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::Ref(i));
    }
  } else {
    NOCTUA_UNREACHABLE("atom of composite sort");
  }
  return out;
}

void SymmetryBreaker::Analyze(const std::vector<Term>& raw,
                              const std::vector<Term>& grounded, const Scope& scope) {
  groups_.clear();
  position_.clear();

  // Models whose elements the RAW assertions distinguish by name: an explicit element
  // literal, or an ArgExtreme binder (its grounding breaks key ties by element order and
  // yields element 0 for empty sets — both element-order dependent, so permuting
  // elements is not an automorphism of the grounded formula). Judged before grounding:
  // grounding itself introduces element literals everywhere.
  std::set<int> dirty;
  auto mark_sort = [&](const Sort& s) {
    if (s->is_ref()) {
      dirty.insert(s->model_id());
    } else if (s->is_pair()) {
      dirty.insert(s->children()[0]->model_id());
      dirty.insert(s->children()[1]->model_id());
    }
  };
  std::unordered_set<Term> seen;
  std::vector<Term> stack(raw.begin(), raw.end());
  while (!stack.empty()) {
    Term t = stack.back();
    stack.pop_back();
    if (t == nullptr || !seen.insert(t).second) {
      continue;
    }
    if (t->kind() == TermKind::kRefLit || t->kind() == TermKind::kArgExtreme) {
      mark_sort(t->sort());
    }
    for (Term c : t->children()) {
      stack.push_back(c);
    }
  }

  // Governed constants: the scalar Ref-sorted ground constants of every clean model with
  // at least two interchangeable elements, in deterministic first-occurrence order.
  std::vector<Term> atoms;
  for (Term g : grounded) {
    Grounder::CollectAtoms(g, &atoms);
  }
  std::unordered_set<Term> taken;
  std::map<int, std::vector<Term>> per_model;
  for (Term a : atoms) {
    if (a->kind() != TermKind::kConst || !a->sort()->is_ref()) {
      continue;
    }
    int m = a->sort()->model_id();
    if (dirty.count(m) != 0 || scope.RefSize(m) < 2) {
      continue;
    }
    if (!taken.insert(a).second) {
      continue;
    }
    per_model[m].push_back(a);
  }
  for (auto& [m, consts] : per_model) {
    Group g;
    g.model_id = m;
    g.consts = std::move(consts);
    for (size_t rank = 0; rank < g.consts.size(); ++rank) {
      position_[g.consts[rank]] = {static_cast<int>(groups_.size()), static_cast<int>(rank)};
    }
    groups_.push_back(std::move(g));
  }
}

int SymmetryBreaker::MaxAllowedIndex(Term atom,
                                     const std::function<int(Term)>& value_of) const {
  auto it = position_.find(atom);
  if (it == position_.end()) {
    return -1;
  }
  const auto [group_idx, rank] = it->second;
  if (rank == 0) {
    return 0;  // the group leader is pinned to element 0
  }
  const Group& g = groups_[static_cast<size_t>(group_idx)];
  int bound = -1;
  for (int j = 0; j < rank; ++j) {
    int v = value_of(g.consts[static_cast<size_t>(j)]);
    // An unassigned predecessor is bounded by its own canonical ceiling j (c_j <= j in
    // every value-precedence-canonical assignment), which keeps the bound sound for
    // partial assignments: no canonical completion is ever pruned.
    bound = std::max(bound, v >= 0 ? v : j);
  }
  return bound + 1;
}

SolveResult Solver::CheckSat(TermFactory& f, const std::vector<Term>& raw_assertions) {
  Stopwatch watch;
  stats_ = SolverStats{};
  model_.values.clear();
  const Budget& budget = options_.budget;
  Deadline deadline = budget.timeout_seconds > 0 && !budget.deterministic
                          ? Deadline::AfterSeconds(budget.timeout_seconds)
                          : Deadline::Never();

  // Ground all binders over the finite scope, then flatten top-level conjunctions so each
  // conjunct prunes independently. With incremental solving on, roots seen by an earlier
  // CheckSat on this Solver (the verifier's stable per-pair frame) are served from the
  // persistent cache instead of re-expanded.
  std::vector<Term> pending;
  bool feasible;
  if (IncrementalEnabled(options_)) {
    feasible = inc_ground_.Ground(f, options_.scope, raw_assertions, &pending,
                                  &stats_.incremental_reuse_hits, &stats_.binders_expanded);
  } else {
    Grounder grounder(&f, options_.scope);
    feasible = GroundAndFlatten(grounder, f, raw_assertions, &pending);
    stats_.binders_expanded = grounder.binders_expanded();
  }
  if (!feasible) {
    stats_.seconds = watch.ElapsedSeconds();
    return SolveResult::kUnsat;
  }

  domains_.Harvest(pending, options_.max_int_domain, options_.max_string_domain);

  SymmetryBreaker symmetry;
  if (SymmetryEnabled(options_)) {
    symmetry.Analyze(raw_assertions, pending, options_.scope);
  }

  std::unordered_map<Term, Term> atom_memo;
  std::map<std::string, std::string>& model_values = model_.values;
  std::vector<std::pair<Term, Term>> assigned;  // (atom, literal) trail
  std::unordered_map<Term, Term> trail_map;     // same content, for substitution

  struct Frame {
    Term atom;
    std::vector<Term> domain;
    size_t next_value = 0;
    std::vector<Term> pending;  // residual assertions before this frame's assignment
  };

  auto pick_atom = [&](const std::vector<Term>& ps) -> Term {
    for (Term a : ps) {
      Term atom = FindFirstAtom(a, atom_memo);
      if (atom != nullptr) {
        return atom;
      }
    }
    return nullptr;
  };

  // Conflict-guided assignment ordering (phase saving): the last value of an atom that
  // did NOT immediately conflict is tried first when the atom is re-decided on another
  // branch — backtracking over an unrelated decision usually leaves it viable.
  std::unordered_map<Term, Term> saved_phase;

  // Builds one frame's candidate list: the shared domain, truncated to the symmetry
  // breaker's lex-leader bound (Ref literals come in element order, so truncating by
  // index IS the value-precedence cut), with the saved phase rotated to the front.
  auto make_domain = [&](Term atom, const std::unordered_map<Term, Term>& trail) {
    std::vector<Term> dom = domains_.LiteralsFor(f, options_.scope, atom);
    if (symmetry.active() && atom->sort()->is_ref()) {
      int ub = symmetry.MaxAllowedIndex(atom, [&](Term c) -> int {
        auto it = trail.find(c);
        if (it == trail.end() || it->second->kind() != TermKind::kRefLit) {
          return -1;
        }
        return static_cast<int>(it->second->int_payload());
      });
      if (ub >= 0 && static_cast<size_t>(ub) + 1 < dom.size()) {
        stats_.symmetry_pruned += dom.size() - (static_cast<size_t>(ub) + 1);
        dom.resize(static_cast<size_t>(ub) + 1);
      }
    }
    auto it = saved_phase.find(atom);
    if (it != saved_phase.end()) {
      auto pos = std::find(dom.begin(), dom.end(), it->second);
      if (pos != dom.end() && pos != dom.begin()) {
        std::rotate(dom.begin(), pos, pos + 1);
      }
    }
    return dom;
  };

  auto record_model = [&]() {
    for (const auto& [atom, value] : assigned) {
      model_values[GroundAtomName(atom)] = value->ToString();
    }
  };

  if (pending.empty()) {
    stats_.seconds = watch.ElapsedSeconds();
    return SolveResult::kSat;  // trivially true
  }

  Term first = pick_atom(pending);
  NOCTUA_CHECK_MSG(first != nullptr, "undecided ground assertion without atoms");
  stats_.num_atoms = 1;

  std::vector<Frame> stack;
  stack.push_back(Frame{first, make_domain(first, trail_map), 0, pending});

  bool timed_out = false;
  while (!stack.empty()) {
    if ((++stats_.nodes_visited & 0x3f) == 0 &&
        (deadline.Expired() ||
         (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)))) {
      timed_out = true;
      break;
    }
    if (stats_.nodes_visited > budget.max_nodes) {
      timed_out = true;
      break;
    }
    Frame& frame = stack.back();
    if (frame.next_value >= frame.domain.size()) {
      if (!assigned.empty() && assigned.back().first == frame.atom) {
        trail_map.erase(assigned.back().first);
        assigned.pop_back();
      }
      stack.pop_back();
      continue;
    }
    Term value = frame.domain[frame.next_value++];
    if (!assigned.empty() && assigned.back().first == frame.atom) {
      assigned.back().second = value;
    } else {
      assigned.emplace_back(frame.atom, value);
    }
    trail_map[frame.atom] = value;

    // Substitute and simplify every residual assertion. The whole trail participates:
    // assigning a Ref atom can materialize array cells that earlier frames already fixed.
    std::unordered_map<Term, Term> memo;
    std::vector<Term> next_pending;
    bool conflict = false;
    for (Term a : frame.pending) {
      ++stats_.evaluations;
      Term r = SubstFixpoint(f, a, trail_map, memo);
      if (r->IsBoolLit(false)) {
        conflict = true;
        break;
      }
      if (r->IsBoolLit(true)) {
        continue;
      }
      if (r->kind() == TermKind::kAnd) {
        for (Term c : r->children()) {
          next_pending.push_back(c);
        }
      } else {
        next_pending.push_back(r);
      }
    }
    if (conflict) {
      continue;
    }
    saved_phase[frame.atom] = value;
    if (next_pending.empty()) {
      record_model();
      stats_.seconds = watch.ElapsedSeconds();
      return SolveResult::kSat;
    }
    Term next_atom = pick_atom(next_pending);
    NOCTUA_CHECK_MSG(next_atom != nullptr, "undecided residual without atoms");
    stats_.num_atoms = std::max(stats_.num_atoms, stack.size() + 1);
    stack.push_back(Frame{next_atom, make_domain(next_atom, trail_map), 0,
                          std::move(next_pending)});
  }

  stats_.seconds = watch.ElapsedSeconds();
  return timed_out ? SolveResult::kUnknown : SolveResult::kUnsat;
}

}  // namespace noctua::smt
