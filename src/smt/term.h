// Hash-consed SMT term DAG and term factory for the Noctua verification backend.
//
// The term language is first-order logic over the sorts in sort.h, extended with a small
// family of *finite binders* (lambda-arrays, bounded quantifiers, and aggregates over Ref
// or Pair domains). Because every binder ranges over a finite scope at solve time, the
// evaluator can expand them exactly; this is what lets the encoder express query-set
// semantics (filter / relation image / orderby / aggregate) compositionally — the key to
// covering more database semantics than an orderless key-value encoding (paper §4.2).
//
// Construction goes through TermFactory, which (1) hash-conses so structurally equal terms
// are pointer-equal, and (2) applies algebraic simplification eagerly in the smart
// constructors (constant folding, short-circuiting, select-over-store, etc.).
#ifndef SRC_SMT_TERM_H_
#define SRC_SMT_TERM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/sort.h"

namespace noctua::smt {

enum class TermKind : uint8_t {
  // Leaves.
  kConst,     // free constant; str_payload = name
  kBoundVar,  // binder-scoped variable; int_payload = unique binder id
  kBoolLit,   // int_payload = 0/1
  kIntLit,    // int_payload = value
  kStrLit,    // str_payload = value
  kRefLit,    // int_payload = element index within the scope (used by models/tests)

  // Boolean connectives.
  kAnd,
  kOr,
  kNot,
  kImplies,  // children [a, b]
  kIte,      // children [cond, then, else]; any sort
  kEq,       // children [a, b]; sorts must match
  kDistinct, // pairwise distinct children

  // Integer arithmetic and comparisons.
  kAdd,
  kSub,  // children [a, b]
  kMul,
  kNeg,  // children [a]
  kLt,
  kLe,

  // Strings.
  kConcat,

  // Tuples.
  kMkTuple,  // children are the field values
  kProj,     // children [tuple]; int_payload = field index

  // Arrays (sets are arrays to Bool).
  kConstArray,   // children [default value]; sort fixed at construction
  kStore,        // children [array, index, value]
  kSelect,       // children [array, index]
  kArrayLambda,  // children [body]; int_payload = bound var id; sort = Array(idx, body sort)

  // Pairs.
  kMkPair,  // children [fst, snd]
  kFst,
  kSnd,

  // Finite binders over Ref/Pair domains. int_payload = bound var id; binder_sort = the
  // domain the variable ranges over.
  kForall,     // children [body: Bool]
  kExists,     // children [body: Bool]
  kCount,      // children [cond: Bool] -> Int                 |{x | cond}|
  kSum,        // children [cond: Bool, value: Int] -> Int     sum of value over {x | cond}
  kMinAgg,     // children [cond: Bool, value: Int] -> Int     min (0 if the set is empty)
  kMaxAgg,     // children [cond: Bool, value: Int] -> Int     max (0 if the set is empty)
  kArgExtreme, // children [cond: Bool, key: Int] -> Ref       member minimizing/maximizing
               // key; int_payload2 = 0 for min (first), 1 for max (last); the scope's
               // element 0 if the set is empty
};

class TermData;
using Term = const TermData*;  // owned by the factory; valid for the factory's lifetime

class TermData {
 public:
  TermKind kind() const { return kind_; }
  const Sort& sort() const { return sort_; }
  const std::vector<Term>& children() const { return children_; }
  Term child(size_t i) const { return children_[i]; }
  int64_t int_payload() const { return int_payload_; }
  int64_t int_payload2() const { return int_payload2_; }
  const std::string& str_payload() const { return str_payload_; }
  const Sort& binder_sort() const { return binder_sort_; }
  bool has_bound_var() const { return has_bound_var_; }
  uint64_t hash() const { return hash_; }
  uint64_t id() const { return id_; }

  bool IsBoolLit(bool v) const {
    return kind_ == TermKind::kBoolLit && (int_payload_ != 0) == v;
  }
  bool IsLiteral() const {
    return kind_ == TermKind::kBoolLit || kind_ == TermKind::kIntLit ||
           kind_ == TermKind::kStrLit || kind_ == TermKind::kRefLit;
  }

  std::string ToString() const;

 private:
  friend class TermFactory;
  TermData() = default;

  TermKind kind_;
  Sort sort_;
  std::vector<Term> children_;
  int64_t int_payload_ = 0;
  int64_t int_payload2_ = 0;
  std::string str_payload_;
  Sort binder_sort_;          // domain sort for binder kinds / index for kArrayLambda
  bool has_bound_var_ = false;  // true if any kBoundVar occurs underneath (binders strip
                                // their own variable)
  uint64_t hash_ = 0;
  uint64_t id_ = 0;  // creation index, used for deterministic ordering
};

// Builds, interns and owns terms.
//
// Threading contract: a TermFactory is NOT thread-safe and is never shared. Each
// verification check constructs its own factory (and Encoder and Solver on top of it),
// so concurrent verification workers are lock-free by construction — hash-consing state,
// term ids, and the interning table are all worker-private. Term ids are creation
// indices, so two workers building isomorphic queries produce identically-shaped DAGs.
class TermFactory {
 public:
  TermFactory();
  ~TermFactory();
  TermFactory(const TermFactory&) = delete;
  TermFactory& operator=(const TermFactory&) = delete;

  // --- Leaves ---------------------------------------------------------------------------
  Term Const(const std::string& name, const Sort& sort);
  Term BoolLit(bool v);
  Term IntLit(int64_t v);
  Term StrLit(const std::string& v);
  Term RefLit(const Sort& ref_sort, int64_t index);
  Term True() { return BoolLit(true); }
  Term False() { return BoolLit(false); }

  // Creates a fresh bound variable of the given sort for use with the binder
  // constructors below. Each call returns a distinct variable.
  Term NewBoundVar(const Sort& sort);

  // --- Boolean --------------------------------------------------------------------------
  Term And(std::vector<Term> xs);
  Term And(Term a, Term b) { return And(std::vector<Term>{a, b}); }
  Term Or(std::vector<Term> xs);
  Term Or(Term a, Term b) { return Or(std::vector<Term>{a, b}); }
  Term Not(Term a);
  Term Implies(Term a, Term b);
  Term Ite(Term cond, Term then_t, Term else_t);
  Term Eq(Term a, Term b);
  Term Neq(Term a, Term b) { return Not(Eq(a, b)); }
  Term Distinct(std::vector<Term> xs);

  // --- Integers -------------------------------------------------------------------------
  Term Add(Term a, Term b);
  Term Sub(Term a, Term b);
  Term Mul(Term a, Term b);
  Term Neg(Term a);
  Term Lt(Term a, Term b);
  Term Le(Term a, Term b);
  Term Gt(Term a, Term b) { return Lt(b, a); }
  Term Ge(Term a, Term b) { return Le(b, a); }

  // --- Strings --------------------------------------------------------------------------
  Term Concat(Term a, Term b);

  // --- Tuples ---------------------------------------------------------------------------
  Term MkTuple(std::vector<Term> fields);
  Term Proj(Term tuple, int64_t index);
  // Returns a tuple equal to `tuple` with field `index` replaced by `value` (SOIR setf).
  Term TupleWith(Term tuple, int64_t index, Term value);

  // --- Arrays / sets --------------------------------------------------------------------
  Term ConstArray(const Sort& index_sort, Term default_value);
  Term Store(Term array, Term index, Term value);
  Term Select(Term array, Term index);
  // ArrayLambda binds `var` (from NewBoundVar) in `body`; the result maps each domain
  // element d to body[var := d].
  Term ArrayLambda(Term var, Term body);

  Term EmptySet(const Sort& index_sort) { return ConstArray(index_sort, False()); }
  Term FullSet(const Sort& index_sort) { return ConstArray(index_sort, True()); }
  Term Member(Term elem, Term set) { return Select(set, elem); }
  Term SetAdd(Term set, Term elem) { return Store(set, elem, True()); }
  Term SetRemove(Term set, Term elem) { return Store(set, elem, False()); }
  Term SetUnion(Term a, Term b);
  Term SetIntersect(Term a, Term b);
  Term SetDifference(Term a, Term b);
  Term SetSubset(Term a, Term b);
  Term SetIsEmpty(Term set);
  Term SetEq(Term a, Term b);

  // --- Pairs ----------------------------------------------------------------------------
  Term MkPair(Term fst, Term snd);
  Term Fst(Term pair);
  Term Snd(Term pair);

  // --- Finite binders -------------------------------------------------------------------
  Term Forall(Term var, Term body);
  Term Exists(Term var, Term body);
  Term Count(Term var, Term cond);
  Term Sum(Term var, Term cond, Term value);
  Term MinAgg(Term var, Term cond, Term value);
  Term MaxAgg(Term var, Term cond, Term value);
  // The element of {x | cond} whose `key` is smallest (want_max=false) or largest.
  Term ArgExtreme(Term var, Term cond, Term key, bool want_max);

  // Number of terms created (for tests and benchmarks).
  size_t size() const { return all_terms_.size(); }

  // Number of Intern calls that found a structurally identical existing term — i.e. how
  // often hash-consing (and the simplifications that canonicalize into it) deduplicated
  // work. Monotonic over the factory's lifetime; observability reports it as
  // "smt.simplify_hits".
  uint64_t intern_hits() const { return intern_hits_; }

  // Interns the bound variable with a specific id (used when rebuilding binders during
  // substitution). Not for general use — prefer NewBoundVar.
  Term InternBoundVar(const Sort& sort, int64_t id);

 private:
  Term Intern(TermKind kind, Sort sort, std::vector<Term> children, int64_t int_payload,
              int64_t int_payload2, std::string str_payload, Sort binder_sort);
  Term MakeBinder(TermKind kind, Term var, std::vector<Term> bodies, Sort result_sort,
                  int64_t payload2 = 0);
  // Linear normal form support (see term.cc): sa*a + sb*b flattened and canonicalized.
  void DecomposeLinear(Term t, int64_t scale, std::map<Term, int64_t>& coeffs,
                       int64_t& constant);
  Term BuildLinear(const std::map<Term, int64_t>& coeffs, int64_t constant);
  Term Linear(Term a, int64_t sa, Term b, int64_t sb);

  std::unordered_map<uint64_t, std::vector<std::unique_ptr<TermData>>> buckets_;
  std::vector<TermData*> all_terms_;
  int64_t next_bound_var_ = 0;
  uint64_t intern_hits_ = 0;
};

// True if `t` contains a free bound variable whose id differs from `self_id`.
bool HasOtherBoundVar(Term t, int64_t self_id);

// True for fully-ground array indices (a Ref literal or a pair of Ref literals).
bool IsGroundIndex(Term t);

// Capture-free substitution of bound variable `var_id` by `value` in `body`, rebuilding
// nodes through the factory so simplifications re-fire (beta reduction).
Term SubstituteBoundVar(TermFactory& f, Term body, int64_t var_id, Term value);

// Rebuilds `t` with new children through the factory's smart constructors.
Term RebuildTerm(TermFactory& f, Term t, std::vector<Term> kids);
Term RebuildBinder(TermFactory& f, Term t, std::vector<Term> kids);

// Deep-copies `t` (and everything it reaches) into factory `f`, preserving DAG sharing;
// sorts are global singletons and shared as-is. This is how a query crosses a factory
// boundary: the portfolio backend clones its assertions into a private factory per
// contestant, because a TermFactory is not thread-safe and must not be shared between
// racing searches.
Term CloneTermInto(TermFactory& f, Term t);

}  // namespace noctua::smt

#endif  // SRC_SMT_TERM_H_
