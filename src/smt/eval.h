// Finite-domain, three-valued term evaluation for the Noctua bounded model finder.
//
// The solver (solver.h) searches for a counterexample by enumerating assignments to
// *atoms* — the scalar unknowns obtained by decomposing every free constant of the
// formula: a scalar constant is one atom; an Array<Ref,Tuple> constant contributes one
// atom per (scope element, tuple field); a set constant one Bool atom per element, etc.
//
// Evaluation is three-valued: unassigned atoms evaluate to Unknown, and connectives
// short-circuit (And with a false child is false regardless of Unknowns). This is what
// lets the DFS prune most of the exponential assignment space.
#ifndef SRC_SMT_EVAL_H_
#define SRC_SMT_EVAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/term.h"

namespace noctua::smt {

// The finite scope: how many distinct IDs each model's Ref sort ranges over.
class Scope {
 public:
  explicit Scope(int default_size = 2) : default_size_(default_size) {}

  void SetModelSize(int model_id, int size) { sizes_[model_id] = size; }

  int RefSize(int model_id) const {
    auto it = sizes_.find(model_id);
    return it == sizes_.end() ? default_size_ : it->second;
  }

  // Number of elements in the domain of a Ref or Pair sort.
  int DomainSize(const Sort& sort) const;

  int default_size() const { return default_size_; }

 private:
  int default_size_;
  std::map<int, int> sizes_;
};

// A ground (or partially-ground) value. Composite values may contain Unknown leaves.
class Value {
 public:
  enum class Kind : uint8_t { kUnknown, kBool, kInt, kString, kRef, kPair, kTuple, kArray };

  Value() : kind_(Kind::kUnknown) {}
  static Value Unknown() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Str(std::string s);
  static Value Ref(int64_t index);
  static Value Pair(int64_t fst, int64_t snd);
  static Value Tuple(std::vector<Value> fields);
  static Value Array(std::vector<Value> elements);

  Kind kind() const { return kind_; }
  bool is_unknown() const { return kind_ == Kind::kUnknown; }
  bool is_known() const { return kind_ != Kind::kUnknown; }

  bool bool_v() const;
  int64_t int_v() const;        // also the index for kRef
  const std::string& str_v() const;
  int64_t pair_fst() const;
  int64_t pair_snd() const;
  const std::vector<Value>& elements() const;  // kTuple fields or kArray elements
  std::vector<Value>& mutable_elements();

  // True if no Unknown occurs anywhere inside.
  bool FullyKnown() const;

  // Three-valued structural equality: nullopt when it cannot be decided yet.
  static std::optional<bool> Equal(const Value& a, const Value& b);

  std::string ToString() const;

 private:
  Kind kind_;
  bool b_ = false;
  int64_t i_ = 0;
  int64_t j_ = 0;  // second component of kPair
  std::string s_;
  std::vector<Value> elems_;
};

// One scalar unknown of the search. `base` is the free constant it came from; `index` is
// the domain element for array-typed constants (-1 otherwise); `field` the tuple field
// (-1 otherwise).
struct Atom {
  Term base = nullptr;
  int32_t index = -1;
  int32_t field = -1;
  Sort sort;  // scalar sort: Bool, Int, String, or Ref

  std::string Name() const;
};

// Decomposes the free constants of a set of terms into atoms, in deterministic
// first-occurrence order.
class AtomTable {
 public:
  AtomTable(const Scope& scope, const std::vector<Term>& roots);

  const std::vector<Atom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }

  // Atom id lookup; returns -1 if the (const, index, field) triple is not an atom.
  int Find(Term base, int32_t index, int32_t field) const;

  // All free constants found, in first-occurrence order.
  const std::vector<Term>& constants() const { return consts_; }

 private:
  void AddConstant(const Scope& scope, Term c);
  void AddAtom(Term base, int32_t index, int32_t field, const Sort& sort);

  std::vector<Atom> atoms_;
  std::vector<Term> consts_;
  struct KeyHash {
    size_t operator()(const std::tuple<Term, int32_t, int32_t>& k) const;
  };
  std::unordered_map<std::tuple<Term, int32_t, int32_t>, int, KeyHash> by_key_;
};

// Evaluates terms under a (possibly partial) atom assignment. Construct once per
// assignment state; evaluation results are memoized across Eval calls for terms that do
// not mention bound variables.
class Evaluator {
 public:
  Evaluator(const Scope& scope, const AtomTable& atoms, const std::vector<Value>& assignment);

  Value Eval(Term t);

 private:
  Value EvalRec(Term t);
  Value EvalConst(Term t);
  Value EvalBinder(Term t);
  // Enumerates the domain of `sort` as Values (Ref indices or Pairs).
  std::vector<Value> DomainElements(const Sort& sort) const;

  const Scope& scope_;
  const AtomTable& atoms_;
  const std::vector<Value>& assignment_;
  std::unordered_map<Term, Value> memo_;
  std::unordered_map<int64_t, Value> env_;  // bound var id -> value
};

}  // namespace noctua::smt

#endif  // SRC_SMT_EVAL_H_
