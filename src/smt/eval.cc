#include "src/smt/eval.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::smt {

// --- Scope --------------------------------------------------------------------------------

int Scope::DomainSize(const Sort& sort) const {
  if (sort->is_ref()) {
    return RefSize(sort->model_id());
  }
  if (sort->is_pair()) {
    return RefSize(sort->children()[0]->model_id()) * RefSize(sort->children()[1]->model_id());
  }
  NOCTUA_UNREACHABLE("domain size of non-finite sort");
}

// --- Value --------------------------------------------------------------------------------

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.s_ = std::move(s);
  return v;
}

Value Value::Ref(int64_t index) {
  Value v;
  v.kind_ = Kind::kRef;
  v.i_ = index;
  return v;
}

Value Value::Pair(int64_t fst, int64_t snd) {
  Value v;
  v.kind_ = Kind::kPair;
  v.i_ = fst;
  v.j_ = snd;
  return v;
}

Value Value::Tuple(std::vector<Value> fields) {
  Value v;
  v.kind_ = Kind::kTuple;
  v.elems_ = std::move(fields);
  return v;
}

Value Value::Array(std::vector<Value> elements) {
  Value v;
  v.kind_ = Kind::kArray;
  v.elems_ = std::move(elements);
  return v;
}

bool Value::bool_v() const {
  NOCTUA_DCHECK(kind_ == Kind::kBool);
  return b_;
}

int64_t Value::int_v() const {
  NOCTUA_DCHECK(kind_ == Kind::kInt || kind_ == Kind::kRef);
  return i_;
}

const std::string& Value::str_v() const {
  NOCTUA_DCHECK(kind_ == Kind::kString);
  return s_;
}

int64_t Value::pair_fst() const {
  NOCTUA_DCHECK(kind_ == Kind::kPair);
  return i_;
}

int64_t Value::pair_snd() const {
  NOCTUA_DCHECK(kind_ == Kind::kPair);
  return j_;
}

const std::vector<Value>& Value::elements() const {
  NOCTUA_DCHECK(kind_ == Kind::kTuple || kind_ == Kind::kArray);
  return elems_;
}

std::vector<Value>& Value::mutable_elements() {
  NOCTUA_DCHECK(kind_ == Kind::kTuple || kind_ == Kind::kArray);
  return elems_;
}

bool Value::FullyKnown() const {
  switch (kind_) {
    case Kind::kUnknown:
      return false;
    case Kind::kTuple:
    case Kind::kArray:
      for (const Value& e : elems_) {
        if (!e.FullyKnown()) {
          return false;
        }
      }
      return true;
    default:
      return true;
  }
}

std::optional<bool> Value::Equal(const Value& a, const Value& b) {
  if (a.is_unknown() || b.is_unknown()) {
    return std::nullopt;
  }
  NOCTUA_CHECK_MSG(a.kind_ == b.kind_, "comparing values of different kinds");
  switch (a.kind_) {
    case Kind::kBool:
      return a.b_ == b.b_;
    case Kind::kInt:
    case Kind::kRef:
      return a.i_ == b.i_;
    case Kind::kString:
      return a.s_ == b.s_;
    case Kind::kPair:
      return a.i_ == b.i_ && a.j_ == b.j_;
    case Kind::kTuple:
    case Kind::kArray: {
      NOCTUA_CHECK(a.elems_.size() == b.elems_.size());
      bool any_unknown = false;
      for (size_t i = 0; i < a.elems_.size(); ++i) {
        std::optional<bool> eq = Equal(a.elems_[i], b.elems_[i]);
        if (!eq.has_value()) {
          any_unknown = true;
        } else if (!*eq) {
          return false;
        }
      }
      if (any_unknown) {
        return std::nullopt;
      }
      return true;
    }
    case Kind::kUnknown:
      return std::nullopt;
  }
  NOCTUA_UNREACHABLE("bad value kind");
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kUnknown:
      return "?";
    case Kind::kBool:
      return b_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kString:
      return "\"" + s_ + "\"";
    case Kind::kRef:
      return "#" + std::to_string(i_);
    case Kind::kPair:
      return "(#" + std::to_string(i_) + ",#" + std::to_string(j_) + ")";
    case Kind::kTuple:
    case Kind::kArray: {
      std::string out = kind_ == Kind::kTuple ? "(" : "[";
      for (size_t i = 0; i < elems_.size(); ++i) {
        if (i != 0) {
          out += ",";
        }
        out += elems_[i].ToString();
      }
      return out + (kind_ == Kind::kTuple ? ")" : "]");
    }
  }
  NOCTUA_UNREACHABLE("bad value kind");
}

// --- Atom / AtomTable ---------------------------------------------------------------------

std::string Atom::Name() const {
  std::string n = base->str_payload();
  if (index >= 0) {
    n += "[" + std::to_string(index) + "]";
  }
  if (field >= 0) {
    n += "." + std::to_string(field);
  }
  return n;
}

size_t AtomTable::KeyHash::operator()(const std::tuple<Term, int32_t, int32_t>& k) const {
  size_t h = std::hash<Term>()(std::get<0>(k));
  h ^= static_cast<size_t>(std::get<1>(k) + 7) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<size_t>(std::get<2>(k) + 13) * 0xff51afd7ed558ccdULL;
  return h;
}

AtomTable::AtomTable(const Scope& scope, const std::vector<Term>& roots) {
  // Collect free constants in deterministic first-occurrence (DFS) order.
  std::unordered_map<Term, bool> seen;
  std::vector<Term> stack(roots.rbegin(), roots.rend());
  // Iterative DFS preserving left-to-right order requires an explicit worklist walk.
  std::vector<Term> order;
  auto walk = [&](Term root, auto&& self) -> void {
    if (seen.count(root)) {
      return;
    }
    seen[root] = true;
    if (root->kind() == TermKind::kConst) {
      order.push_back(root);
      return;
    }
    for (Term c : root->children()) {
      self(c, self);
    }
  };
  for (Term r : roots) {
    walk(r, walk);
  }
  for (Term c : order) {
    AddConstant(scope, c);
  }
}

void AtomTable::AddConstant(const Scope& scope, Term c) {
  consts_.push_back(c);
  const Sort& s = c->sort();
  if (s->is_array()) {
    int n = scope.DomainSize(s->index_sort());
    const Sort& elem = s->element_sort();
    if (elem->is_tuple()) {
      for (int i = 0; i < n; ++i) {
        for (size_t f = 0; f < elem->children().size(); ++f) {
          AddAtom(c, i, static_cast<int32_t>(f), elem->children()[f]);
        }
      }
    } else {
      for (int i = 0; i < n; ++i) {
        AddAtom(c, i, -1, elem);
      }
    }
  } else if (s->is_tuple()) {
    for (size_t f = 0; f < s->children().size(); ++f) {
      AddAtom(c, -1, static_cast<int32_t>(f), s->children()[f]);
    }
  } else {
    AddAtom(c, -1, -1, s);
  }
}

void AtomTable::AddAtom(Term base, int32_t index, int32_t field, const Sort& sort) {
  NOCTUA_CHECK_MSG(!sort->is_array() && !sort->is_tuple(),
                   "nested composite constants are not supported by the encoder");
  int id = static_cast<int>(atoms_.size());
  atoms_.push_back(Atom{base, index, field, sort});
  by_key_[{base, index, field}] = id;
}

int AtomTable::Find(Term base, int32_t index, int32_t field) const {
  auto it = by_key_.find({base, index, field});
  return it == by_key_.end() ? -1 : it->second;
}

// --- Evaluator ----------------------------------------------------------------------------

Evaluator::Evaluator(const Scope& scope, const AtomTable& atoms,
                     const std::vector<Value>& assignment)
    : scope_(scope), atoms_(atoms), assignment_(assignment) {}

Value Evaluator::Eval(Term t) { return EvalRec(t); }

std::vector<Value> Evaluator::DomainElements(const Sort& sort) const {
  std::vector<Value> out;
  if (sort->is_ref()) {
    int n = scope_.RefSize(sort->model_id());
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
      out.push_back(Value::Ref(i));
    }
  } else if (sort->is_pair()) {
    int n1 = scope_.RefSize(sort->children()[0]->model_id());
    int n2 = scope_.RefSize(sort->children()[1]->model_id());
    out.reserve(static_cast<size_t>(n1) * n2);
    for (int i = 0; i < n1; ++i) {
      for (int j = 0; j < n2; ++j) {
        out.push_back(Value::Pair(i, j));
      }
    }
  } else {
    NOCTUA_UNREACHABLE("domain of non-finite sort");
  }
  return out;
}

Value Evaluator::EvalConst(Term t) {
  const Sort& s = t->sort();
  auto atom_value = [&](int32_t index, int32_t field) -> Value {
    int id = atoms_.Find(t, index, field);
    if (id < 0 || id >= static_cast<int>(assignment_.size())) {
      return Value::Unknown();
    }
    return assignment_[id];
  };
  if (s->is_array()) {
    int n = scope_.DomainSize(s->index_sort());
    const Sort& elem = s->element_sort();
    std::vector<Value> elems;
    elems.reserve(n);
    for (int i = 0; i < n; ++i) {
      if (elem->is_tuple()) {
        std::vector<Value> fields;
        fields.reserve(elem->children().size());
        for (size_t f = 0; f < elem->children().size(); ++f) {
          fields.push_back(atom_value(i, static_cast<int32_t>(f)));
        }
        elems.push_back(Value::Tuple(std::move(fields)));
      } else {
        elems.push_back(atom_value(i, -1));
      }
    }
    return Value::Array(std::move(elems));
  }
  if (s->is_tuple()) {
    std::vector<Value> fields;
    fields.reserve(s->children().size());
    for (size_t f = 0; f < s->children().size(); ++f) {
      fields.push_back(atom_value(-1, static_cast<int32_t>(f)));
    }
    return Value::Tuple(std::move(fields));
  }
  return atom_value(-1, -1);
}

// Converts a Pair or Ref value to its linear index in the domain enumeration; returns -1
// if the value is unknown.
namespace {
int64_t DomainIndex(const Scope& scope, const Sort& sort, const Value& v) {
  if (v.is_unknown()) {
    return -1;
  }
  if (sort->is_ref()) {
    return v.int_v();
  }
  int n2 = scope.RefSize(sort->children()[1]->model_id());
  return v.pair_fst() * n2 + v.pair_snd();
}
}  // namespace

Value Evaluator::EvalBinder(Term t) {
  const Sort& dom = t->binder_sort();
  int64_t var_id = t->int_payload();
  std::vector<Value> elems = DomainElements(dom);
  auto with_env = [&](const Value& e, Term body) -> Value {
    auto saved = env_.find(var_id);
    Value old;
    bool had = saved != env_.end();
    if (had) {
      old = saved->second;
    }
    env_[var_id] = e;
    Value r = EvalRec(body);
    if (had) {
      env_[var_id] = old;
    } else {
      env_.erase(var_id);
    }
    return r;
  };

  switch (t->kind()) {
    case TermKind::kForall: {
      bool unknown = false;
      for (const Value& e : elems) {
        Value b = with_env(e, t->child(0));
        if (b.is_unknown()) {
          unknown = true;
        } else if (!b.bool_v()) {
          return Value::Bool(false);
        }
      }
      return unknown ? Value::Unknown() : Value::Bool(true);
    }
    case TermKind::kExists: {
      bool unknown = false;
      for (const Value& e : elems) {
        Value b = with_env(e, t->child(0));
        if (b.is_unknown()) {
          unknown = true;
        } else if (b.bool_v()) {
          return Value::Bool(true);
        }
      }
      return unknown ? Value::Unknown() : Value::Bool(false);
    }
    case TermKind::kArrayLambda: {
      std::vector<Value> out;
      out.reserve(elems.size());
      for (const Value& e : elems) {
        out.push_back(with_env(e, t->child(0)));
      }
      return Value::Array(std::move(out));
    }
    case TermKind::kCount: {
      int64_t count = 0;
      for (const Value& e : elems) {
        Value b = with_env(e, t->child(0));
        if (b.is_unknown()) {
          return Value::Unknown();
        }
        if (b.bool_v()) {
          ++count;
        }
      }
      return Value::Int(count);
    }
    case TermKind::kSum:
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg: {
      int64_t acc = 0;
      bool first = true;
      for (const Value& e : elems) {
        Value b = with_env(e, t->child(0));
        if (b.is_unknown()) {
          return Value::Unknown();
        }
        if (!b.bool_v()) {
          continue;
        }
        Value v = with_env(e, t->child(1));
        if (v.is_unknown()) {
          return Value::Unknown();
        }
        int64_t x = v.int_v();
        if (t->kind() == TermKind::kSum) {
          acc += x;
        } else if (first) {
          acc = x;
        } else if (t->kind() == TermKind::kMinAgg) {
          acc = std::min(acc, x);
        } else {
          acc = std::max(acc, x);
        }
        first = false;
      }
      return Value::Int(acc);  // empty-set aggregates yield 0 by convention
    }
    case TermKind::kArgExtreme: {
      bool want_max = t->int_payload2() != 0;
      bool found = false;
      int64_t best_key = 0;
      Value best_elem;
      for (const Value& e : elems) {
        Value b = with_env(e, t->child(0));
        if (b.is_unknown()) {
          return Value::Unknown();
        }
        if (!b.bool_v()) {
          continue;
        }
        Value k = with_env(e, t->child(1));
        if (k.is_unknown()) {
          return Value::Unknown();
        }
        int64_t key = k.int_v();
        if (!found || (want_max ? key > best_key : key < best_key)) {
          found = true;
          best_key = key;
          best_elem = e;
        }
      }
      if (!found) {
        return dom->is_ref() ? Value::Ref(0) : Value::Pair(0, 0);
      }
      return best_elem;
    }
    default:
      NOCTUA_UNREACHABLE("not a binder kind");
  }
}

Value Evaluator::EvalRec(Term t) {
  bool memoizable = !t->has_bound_var();
  if (memoizable) {
    auto it = memo_.find(t);
    if (it != memo_.end()) {
      return it->second;
    }
  }
  Value result;
  switch (t->kind()) {
    case TermKind::kConst:
      result = EvalConst(t);
      break;
    case TermKind::kBoundVar: {
      auto it = env_.find(t->int_payload());
      NOCTUA_CHECK_MSG(it != env_.end(), "unbound variable during evaluation");
      result = it->second;
      break;
    }
    case TermKind::kBoolLit:
      result = Value::Bool(t->int_payload() != 0);
      break;
    case TermKind::kIntLit:
      result = Value::Int(t->int_payload());
      break;
    case TermKind::kStrLit:
      result = Value::Str(t->str_payload());
      break;
    case TermKind::kRefLit:
      result = Value::Ref(t->int_payload());
      break;
    case TermKind::kAnd: {
      bool unknown = false;
      result = Value::Bool(true);
      for (Term c : t->children()) {
        Value v = EvalRec(c);
        if (v.is_unknown()) {
          unknown = true;
        } else if (!v.bool_v()) {
          result = Value::Bool(false);
          unknown = false;
          break;
        }
      }
      if (unknown) {
        result = Value::Unknown();
      }
      break;
    }
    case TermKind::kOr: {
      bool unknown = false;
      result = Value::Bool(false);
      for (Term c : t->children()) {
        Value v = EvalRec(c);
        if (v.is_unknown()) {
          unknown = true;
        } else if (v.bool_v()) {
          result = Value::Bool(true);
          unknown = false;
          break;
        }
      }
      if (unknown) {
        result = Value::Unknown();
      }
      break;
    }
    case TermKind::kNot: {
      Value v = EvalRec(t->child(0));
      result = v.is_unknown() ? Value::Unknown() : Value::Bool(!v.bool_v());
      break;
    }
    case TermKind::kImplies: {
      Value a = EvalRec(t->child(0));
      if (a.is_known() && !a.bool_v()) {
        result = Value::Bool(true);
        break;
      }
      Value b = EvalRec(t->child(1));
      if (b.is_known() && b.bool_v()) {
        result = Value::Bool(true);
      } else if (a.is_known() && b.is_known()) {
        result = Value::Bool(!a.bool_v() || b.bool_v());
      } else {
        result = Value::Unknown();
      }
      break;
    }
    case TermKind::kIte: {
      Value c = EvalRec(t->child(0));
      if (c.is_known()) {
        result = EvalRec(t->child(c.bool_v() ? 1 : 2));
      } else {
        Value a = EvalRec(t->child(1));
        Value b = EvalRec(t->child(2));
        std::optional<bool> eq = Value::Equal(a, b);
        result = (eq.has_value() && *eq) ? a : Value::Unknown();
      }
      break;
    }
    case TermKind::kEq: {
      std::optional<bool> eq = Value::Equal(EvalRec(t->child(0)), EvalRec(t->child(1)));
      result = eq.has_value() ? Value::Bool(*eq) : Value::Unknown();
      break;
    }
    case TermKind::kDistinct: {
      std::vector<Value> vs;
      vs.reserve(t->children().size());
      for (Term c : t->children()) {
        vs.push_back(EvalRec(c));
      }
      bool unknown = false;
      result = Value::Bool(true);
      for (size_t i = 0; i < vs.size() && result.is_known() && result.bool_v(); ++i) {
        for (size_t j = i + 1; j < vs.size(); ++j) {
          std::optional<bool> eq = Value::Equal(vs[i], vs[j]);
          if (!eq.has_value()) {
            unknown = true;
          } else if (*eq) {
            result = Value::Bool(false);
            unknown = false;
            break;
          }
        }
      }
      if (unknown) {
        result = Value::Unknown();
      }
      break;
    }
    case TermKind::kAdd:
    case TermKind::kSub:
    case TermKind::kMul: {
      Value a = EvalRec(t->child(0));
      // 0 * x == 0 even when x is unknown.
      if (t->kind() == TermKind::kMul && a.is_known() && a.int_v() == 0) {
        result = Value::Int(0);
        break;
      }
      Value b = EvalRec(t->child(1));
      if (t->kind() == TermKind::kMul && b.is_known() && b.int_v() == 0) {
        result = Value::Int(0);
        break;
      }
      if (a.is_unknown() || b.is_unknown()) {
        result = Value::Unknown();
      } else if (t->kind() == TermKind::kAdd) {
        result = Value::Int(a.int_v() + b.int_v());
      } else if (t->kind() == TermKind::kSub) {
        result = Value::Int(a.int_v() - b.int_v());
      } else {
        result = Value::Int(a.int_v() * b.int_v());
      }
      break;
    }
    case TermKind::kNeg: {
      Value a = EvalRec(t->child(0));
      result = a.is_unknown() ? Value::Unknown() : Value::Int(-a.int_v());
      break;
    }
    case TermKind::kLt:
    case TermKind::kLe: {
      Value a = EvalRec(t->child(0));
      Value b = EvalRec(t->child(1));
      if (a.is_unknown() || b.is_unknown()) {
        result = Value::Unknown();
      } else if (t->kind() == TermKind::kLt) {
        result = Value::Bool(a.int_v() < b.int_v());
      } else {
        result = Value::Bool(a.int_v() <= b.int_v());
      }
      break;
    }
    case TermKind::kConcat: {
      Value a = EvalRec(t->child(0));
      Value b = EvalRec(t->child(1));
      if (a.is_unknown() || b.is_unknown()) {
        result = Value::Unknown();
      } else {
        result = Value::Str(a.str_v() + b.str_v());
      }
      break;
    }
    case TermKind::kMkTuple: {
      std::vector<Value> fields;
      fields.reserve(t->children().size());
      for (Term c : t->children()) {
        fields.push_back(EvalRec(c));
      }
      result = Value::Tuple(std::move(fields));
      break;
    }
    case TermKind::kProj: {
      Value v = EvalRec(t->child(0));
      result = v.is_unknown() ? Value::Unknown() : v.elements()[t->int_payload()];
      break;
    }
    case TermKind::kConstArray: {
      Value d = EvalRec(t->child(0));
      int n = scope_.DomainSize(t->sort()->index_sort());
      result = Value::Array(std::vector<Value>(n, d));
      break;
    }
    case TermKind::kStore: {
      Value a = EvalRec(t->child(0));
      Value i = EvalRec(t->child(1));
      Value v = EvalRec(t->child(2));
      if (a.is_unknown() || i.is_unknown()) {
        result = Value::Unknown();
      } else {
        int64_t idx = DomainIndex(scope_, t->sort()->index_sort(), i);
        std::vector<Value> elems = a.elements();
        elems[idx] = v;
        result = Value::Array(std::move(elems));
      }
      break;
    }
    case TermKind::kSelect: {
      Value a = EvalRec(t->child(0));
      Value i = EvalRec(t->child(1));
      if (a.is_unknown()) {
        result = Value::Unknown();
      } else if (i.is_unknown()) {
        // All elements equal and known -> the select is that value regardless of index.
        const std::vector<Value>& es = a.elements();
        bool all_eq = !es.empty();
        for (size_t k = 1; k < es.size() && all_eq; ++k) {
          std::optional<bool> eq = Value::Equal(es[0], es[k]);
          all_eq = eq.has_value() && *eq;
        }
        result = (all_eq && !es.empty() && es[0].is_known()) ? es[0] : Value::Unknown();
      } else {
        int64_t idx = DomainIndex(scope_, t->child(0)->sort()->index_sort(), i);
        result = a.elements()[idx];
      }
      break;
    }
    case TermKind::kMkPair: {
      Value a = EvalRec(t->child(0));
      Value b = EvalRec(t->child(1));
      if (a.is_unknown() || b.is_unknown()) {
        result = Value::Unknown();
      } else {
        result = Value::Pair(a.int_v(), b.int_v());
      }
      break;
    }
    case TermKind::kFst: {
      Value p = EvalRec(t->child(0));
      result = p.is_unknown() ? Value::Unknown() : Value::Ref(p.pair_fst());
      break;
    }
    case TermKind::kSnd: {
      Value p = EvalRec(t->child(0));
      result = p.is_unknown() ? Value::Unknown() : Value::Ref(p.pair_snd());
      break;
    }
    case TermKind::kForall:
    case TermKind::kExists:
    case TermKind::kArrayLambda:
    case TermKind::kCount:
    case TermKind::kSum:
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg:
    case TermKind::kArgExtreme:
      result = EvalBinder(t);
      break;
  }
  if (memoizable) {
    memo_.emplace(t, result);
  }
  return result;
}

}  // namespace noctua::smt
