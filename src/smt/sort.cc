#include "src/smt/sort.h"

#include "src/support/check.h"

namespace noctua::smt {

std::string SortData::ToString() const {
  switch (kind_) {
    case SortKind::kBool:
      return "Bool";
    case SortKind::kInt:
      return "Int";
    case SortKind::kString:
      return "String";
    case SortKind::kRef:
      return "Ref<" + std::to_string(model_id_) + ">";
    case SortKind::kPair:
      return "Pair<" + children_[0]->ToString() + "," + children_[1]->ToString() + ">";
    case SortKind::kTuple: {
      std::string out = "Tuple<";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i != 0) {
          out += ",";
        }
        out += children_[i]->ToString();
      }
      return out + ">";
    }
    case SortKind::kArray:
      return "Array<" + children_[0]->ToString() + "," + children_[1]->ToString() + ">";
  }
  NOCTUA_UNREACHABLE("bad sort kind");
}

bool SortEq(const Sort& a, const Sort& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a->kind() != b->kind() || a->model_id() != b->model_id() ||
      a->children().size() != b->children().size()) {
    return false;
  }
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!SortEq(a->children()[i], b->children()[i])) {
      return false;
    }
  }
  return true;
}

Sort BoolSort() {
  static const Sort s = std::make_shared<SortData>(SortKind::kBool, -1, std::vector<Sort>{});
  return s;
}

Sort IntSort() {
  static const Sort s = std::make_shared<SortData>(SortKind::kInt, -1, std::vector<Sort>{});
  return s;
}

Sort StringSort() {
  static const Sort s = std::make_shared<SortData>(SortKind::kString, -1, std::vector<Sort>{});
  return s;
}

Sort RefSort(int model_id) {
  NOCTUA_CHECK(model_id >= 0);
  return std::make_shared<SortData>(SortKind::kRef, model_id, std::vector<Sort>{});
}

Sort PairSort(const Sort& ref1, const Sort& ref2) {
  NOCTUA_CHECK(ref1->is_ref() && ref2->is_ref());
  return std::make_shared<SortData>(SortKind::kPair, -1, std::vector<Sort>{ref1, ref2});
}

Sort TupleSort(std::vector<Sort> fields) {
  return std::make_shared<SortData>(SortKind::kTuple, -1, std::move(fields));
}

Sort ArraySort(const Sort& index, const Sort& element) {
  NOCTUA_CHECK_MSG(index->is_finite_domain(), "array index sort must be Ref or Pair");
  return std::make_shared<SortData>(SortKind::kArray, -1, std::vector<Sort>{index, element});
}

Sort SetSort(const Sort& index) { return ArraySort(index, BoolSort()); }

}  // namespace noctua::smt
