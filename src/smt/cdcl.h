// A CDCL-style ground SAT backend: the second decision procedure behind SolverBackend.
//
// Where the bounded model finder (solver.h) searches by substituting atoms into the term
// DAG and letting the simplifier prune, this backend compiles the same finite question to
// clauses and runs conflict-driven clause learning over them:
//
//   * The query is grounded through GroundAndFlatten and its free constants decomposed
//     into scalar atoms (AtomTable), exactly as the evaluator sees them.
//   * Each atom gets one boolean variable per candidate value from ValueDomains — the
//     direct encoding [atom = value] — tied together by exactly-one clauses.
//   * The term-level structure of the assertions is NOT compiled to clauses. It stays a
//     lazy theory: at every propagation fixpoint the assigned atoms are substituted into
//     the assertions and the term factory's simplifier collapses the residual (the same
//     substitute-and-simplify move the model finder makes — which is what lets algebraic
//     identities like S+x+y = S+y+x prove themselves without search). An assertion whose
//     residual is literal false contributes a *nogood* (the negation of the assigned
//     support atoms) learned like any conflict clause; a residual that is still open
//     yields a decision suggestion — its first surviving atom — so the search only ever
//     branches on atoms the simplifier could not eliminate.
//   * Atoms are encoded lazily, on first appearance in a residual: substituting a Ref
//     atom can materialize new array-cell atoms, so the variable blocks grow mid-search.
//
// CdclSearch is the propositional core — two-watched-literal unit propagation, first-UIP
// conflict analysis, VSIDS-style activities, backjumping — exposed separately so unit
// tests can drive propagation and learning on hand-built formulas.
#ifndef SRC_SMT_CDCL_H_
#define SRC_SMT_CDCL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/smt/backend.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace noctua::smt {

// What the lazy theory says about the current propositional fixpoint.
enum class TheoryVerdict : uint8_t {
  kSat,         // every assertion is definitely true: a model is found
  kConsistent,  // nothing definitely false yet: keep deciding
  kConflict,    // some assertion is definitely false: learn the nogood
};

struct TheoryResult {
  TheoryVerdict verdict = TheoryVerdict::kConsistent;
  // For kConflict: a clause (over search literals) that is false under the current
  // assignment and in every other state that repeats the same support assignment.
  std::vector<int> nogood;
  // For kConsistent: the literal the theory wants decided next (-1 for none). The lazy
  // backend points at the first value of the first atom surviving in an open residual;
  // Solve prefers it over the activity heuristic.
  int decision = -1;
};

// The propositional CDCL core. Literal encoding: variable v yields literals 2v (positive)
// and 2v+1 (negative). Public primitives (NewVar/AddClause/Decide/Propagate/Analyze/
// BacktrackTo) exist so tests can exercise the machinery piecewise; Solve drives them.
//
// Determinism: given the same variables, clauses, and hook behavior, the search makes
// identical decisions (activity ties break toward the smallest variable), so verdicts are
// machine-independent under a node-only budget.
class CdclSearch {
 public:
  static int PosLit(int var) { return var << 1; }
  static int NegLit(int var) { return (var << 1) | 1; }
  static int VarOf(int lit) { return lit >> 1; }
  static bool IsNeg(int lit) { return (lit & 1) != 0; }
  static int Negate(int lit) { return lit ^ 1; }

  // Returns the new variable's index.
  int NewVar();
  int num_vars() const { return static_cast<int>(value_.size()); }

  // Adds an input clause. Must be called at decision level 0: literals already false at
  // level 0 are dropped, satisfied clauses are discarded, duplicates and tautologies are
  // handled. An empty (or contradicted-unit) result marks the instance unsat.
  // `removable` marks a derived (entailed) clause the DB reducer may later forget; input
  // clauses that define the problem must stay irremovable.
  void AddClause(std::vector<int> lits, bool removable = false);

  // Adds a clause whose literals are ALL unassigned (checked), at any decision level —
  // the lazy encoder's entry point for the exactly-one clauses of an atom discovered
  // mid-search, whose variables are necessarily fresh. Size must be >= 2.
  void AddEncodingClause(std::vector<int> lits);

  // Propagates to fixpoint. Returns the index of a conflicting clause, or -1.
  int Propagate();

  // Starts a new decision level and asserts `lit`. The literal must be unassigned.
  void Decide(int lit);

  struct Conflict {
    // Learned clause; the asserting literal is learned[0] and (when size > 1) the
    // highest-level other literal is learned[1].
    std::vector<int> learned;
    // Level to backjump to before asserting learned[0].
    int backjump_level = 0;
  };

  // First-UIP conflict analysis over a clause whose literals are all false under the
  // current assignment, at least one of them at the current (non-zero) decision level.
  Conflict Analyze(const std::vector<int>& conflict_lits);

  // Undoes all assignments above `level`.
  void BacktrackTo(int level);

  // -1 unassigned, 0 false, 1 true.
  int value(int var) const { return value_[var]; }
  int LitValue(int lit) const;
  int LevelOf(int var) const { return level_[var]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  bool unsat() const { return unsat_; }

  // Decisions + propagations: the unit Budget::max_nodes is charged against.
  uint64_t nodes() const { return nodes_; }
  uint64_t conflicts() const { return conflicts_; }
  uint64_t learned_clauses() const { return learned_; }
  uint64_t restarts() const { return restarts_; }
  uint64_t clauses_forgotten() const { return forgotten_; }

  // Enables Luby restarts: after luby(r+1) * `unit` conflicts since the last restart the
  // search backjumps to level 0, reduces the learned-clause DB by activity (keeping
  // binaries, input/encoding clauses, and reasons of level-0 assignments), and invokes
  // `on_restart` (may be null) — the hook the lazy backend uses to inject symmetric
  // images of theory nogoods at a level where AddClause is legal. `unit` == 0 disables
  // restarts (the default, which leaves pure-SAT unit tests bit-for-bit unchanged).
  void ConfigureRestarts(uint64_t unit, std::function<void()> on_restart = nullptr);

  // Unassigned variable with the highest activity (ties toward the smallest index), or
  // -1 when every variable is assigned.
  int PickBranchVar() const;

  // The CDCL loop. `theory` (may be null for pure SAT) is consulted at every conflict-free
  // propagation fixpoint; `budget` (may be null) is polled once per loop iteration and
  // aborts the search with kUnknown when it returns true.
  SolveResult Solve(const std::function<TheoryResult()>& theory,
                    const std::function<bool()>& budget);

 private:
  // Appends a clause and attaches watches on lits[0] and lits[1]. Size must be >= 2.
  int AttachClause(std::vector<int> lits, bool removable = false);
  // Assigns `lit` true with `reason_clause` (-1 for decisions / level-0 facts). Returns
  // false iff `lit` is already false.
  bool Enqueue(int lit, int reason_clause);
  void BumpVar(int var);
  void BumpClause(int ci);
  // Analyze + backtrack + learn + assert for a falsified clause at the current level.
  void ResolveConflict(const std::vector<int>& conflict_lits);
  // Restart when the Luby schedule says so: backjump to 0, reduce the DB, run the hook.
  void MaybeRestart();
  // Drops the least-active half of the removable clauses (keeping binaries and reasons
  // of level-0 assignments), rebuilding watches and remapping reasons. Level 0 only.
  void ReduceDb();

  struct Clause {
    std::vector<int> lits;
    bool removable = false;   // learned / injected: the DB reducer may drop it
    double activity = 0.0;    // bumped when the clause participates in conflict analysis
  };

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // literal -> clause indices watching it
  std::vector<int8_t> value_;              // per var: -1 / 0 / 1
  std::vector<int> level_;                 // per var: assignment level
  std::vector<int> reason_;                // per var: implying clause index or -1
  std::vector<double> activity_;           // per var: VSIDS score
  std::vector<char> seen_;                 // per var: Analyze scratch
  std::vector<int> trail_;                 // assigned literals in order
  std::vector<int> trail_lim_;             // trail size at each decision level
  size_t qhead_ = 0;                       // propagation frontier into trail_
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  bool unsat_ = false;
  uint64_t nodes_ = 0;
  uint64_t conflicts_ = 0;
  uint64_t learned_ = 0;
  uint64_t restart_unit_ = 0;              // 0 = restarts disabled
  uint64_t restarts_ = 0;
  uint64_t forgotten_ = 0;
  uint64_t conflicts_at_restart_ = 0;
  std::function<void()> on_restart_;
};

// The SolverBackend adapter: grounds, encodes atoms directly, and runs CdclSearch with
// the three-valued Evaluator as the lazy theory.
class CdclBackend : public SolverBackend {
 public:
  explicit CdclBackend(SolverOptions options) : options_(std::move(options)) {}

  const char* name() const override { return "cdcl"; }
  BackendCaps caps() const override {
    return BackendCaps{/*deterministic_budget=*/true, /*produces_model=*/true,
                       /*cancellable=*/true, /*incremental=*/true};
  }
  const SmtModel& model() const override { return model_; }
  const SolverStats& stats() const override { return stats_; }
  void set_cancel(const std::atomic<bool>* cancel) override { cancel_ = cancel; }

 protected:
  SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) override;

 private:
  SolverOptions options_;
  SmtModel model_;
  SolverStats stats_;
  // Persistent ground cache: repeated Checks over a stable frame (the verifier's pair
  // sessions) re-ground only their fresh roots. Used when incremental solving is on.
  IncrementalGrounder inc_ground_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_CDCL_H_
