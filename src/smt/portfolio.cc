#include "src/smt/portfolio.h"

#include <array>
#include <memory>
#include <thread>
#include <vector>

#include "src/support/check.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace noctua::smt {

namespace {

// -1 = decide from hardware_concurrency; 0/1 = forced by SetRaceModeForTesting.
std::atomic<int> g_force_race{-1};

// One 2-slot pool per calling thread. Verifier workers run portfolio races
// concurrently, and a ThreadPool supports only one ParallelFor at a time, so the pool
// cannot be shared; thread_local also avoids nesting a race inside the verifier's own
// pool (which would deadlock the caller-participates protocol).
ThreadPool& PortfolioPool() {
  static thread_local ThreadPool pool(2);
  return pool;
}

}  // namespace

void PortfolioBackend::SetRaceModeForTesting(int mode) {
  g_force_race.store(mode, std::memory_order_relaxed);
}

// Single-core fallback: run the contestants one after another on the caller's factory
// (no second thread, so no clones needed), stopping at the first decisive verdict. dfs
// goes first — it is the cheaper contestant on typical queries — and cdcl only sees the
// queries dfs abandoned, which is exactly where clause learning earns its keep.
SolveResult PortfolioBackend::Cascade(TermFactory& factory,
                                      const std::vector<Term>& assertions) {
  Stopwatch watch;
  constexpr std::array<BackendKind, 2> kOrder = {BackendKind::kDfs, BackendKind::kCdcl};
  const bool persist = IncrementalEnabled(options_);
  uint64_t prior_nodes = 0;
  uint64_t prior_evals = 0;
  for (size_t i = 0; i < kOrder.size(); ++i) {
    if (!persist || cascade_backends_[i] == nullptr) {
      cascade_backends_[i] = MakeBackend(kOrder[i], options_);
    }
    SolverBackend& backend = *cascade_backends_[i];
    backend.ResetAssertions();
    backend.set_cancel(cancel_);
    backend.AssertAll(assertions);
    SolveResult r = backend.Check(factory);
    // The caller's cancel flag may not outlive this Check; a persistent contestant must
    // not keep pointing at it.
    backend.set_cancel(nullptr);
    if (r != SolveResult::kUnknown) {
      AccumulatePortfolioRace(static_cast<int>(i));
      stats_ = backend.stats();
      stats_.portfolio_winner = static_cast<int>(i);
      stats_.nodes_visited += prior_nodes;
      stats_.evaluations += prior_evals;
      model_ = backend.model();
      stats_.seconds = watch.ElapsedSeconds();
      return r;
    }
    prior_nodes += backend.stats().nodes_visited;
    prior_evals += backend.stats().evaluations;
  }
  AccumulatePortfolioRace(-1);
  stats_.nodes_visited = prior_nodes;
  stats_.evaluations = prior_evals;
  stats_.seconds = watch.ElapsedSeconds();
  return SolveResult::kUnknown;
}

SolveResult PortfolioBackend::DoCheck(TermFactory& factory,
                                      const std::vector<Term>& assertions) {
  Stopwatch watch;
  stats_ = SolverStats{};
  model_.values.clear();
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return SolveResult::kUnknown;
  }

  int forced = g_force_race.load(std::memory_order_relaxed);
  bool race = forced >= 0 ? forced != 0 : std::thread::hardware_concurrency() >= 2;
  if (!race) {
    return Cascade(factory, assertions);
  }

  // From here on, contestants work on private clones, never the caller's factory.
  constexpr std::array<BackendKind, 2> kContestants = {BackendKind::kDfs,
                                                       BackendKind::kCdcl};

  // A TermFactory is not thread-safe, so each contestant gets a private factory and the
  // query is cloned into it HERE, serially, before any second thread exists. Inside the
  // race each contestant touches only its own clone. With incremental solving on, the
  // factories and contestants persist across Checks: hash-consing maps a repeated frame
  // to the identical terms, so the contestant's ground cache carries over.
  const bool persist = IncrementalEnabled(options_);
  for (size_t i = 0; i < 2; ++i) {
    if (!persist || race_factories_[i] == nullptr) {
      race_factories_[i] = std::make_unique<TermFactory>();
      race_backends_[i] = MakeBackend(kContestants[i], options_);
    }
  }
  std::array<std::vector<Term>, 2> cloned;
  for (size_t i = 0; i < 2; ++i) {
    cloned[i].reserve(assertions.size());
    for (Term a : assertions) {
      cloned[i].push_back(CloneTermInto(*race_factories_[i], a));
    }
  }

  std::array<std::atomic<bool>, 2> cancel = {false, false};
  std::array<SolveResult, 2> results = {SolveResult::kUnknown, SolveResult::kUnknown};
  std::atomic<int> winner{-1};

  // Contestants may run on the portfolio pool's second thread, whose thread-local sink
  // is not the caller's. Re-install the caller's sink inside the lambda so contestant
  // accumulations land in the same engine sink as everything else in this run.
  SolverCounterSink* caller_sink = CurrentSolverCounterSink();
  PortfolioPool().ParallelFor(2, [&](size_t i) {
    ScopedSolverCounterSink scoped(caller_sink);
    SolverBackend& b = *race_backends_[i];
    b.ResetAssertions();
    b.set_cancel(&cancel[i]);
    b.AssertAll(cloned[i]);
    SolveResult r = b.Check(*race_factories_[i]);
    results[i] = r;
    if (r != SolveResult::kUnknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
        // First decisive verdict: stop the other contestant at its next checkpoint.
        cancel[1 - i].store(true, std::memory_order_relaxed);
      }
    }
  });
  // The cancel flags are stack-local; persistent contestants must not outlive them with
  // the pointer installed.
  race_backends_[0]->set_cancel(nullptr);
  race_backends_[1]->set_cancel(nullptr);

  int w = winner.load(std::memory_order_relaxed);
  if (w < 0) {
    AccumulatePortfolioRace(-1);
    // Both abandoned: report combined effort so budgets charged upstream stay honest.
    stats_.nodes_visited = race_backends_[0]->stats().nodes_visited +
                           race_backends_[1]->stats().nodes_visited;
    stats_.evaluations =
        race_backends_[0]->stats().evaluations + race_backends_[1]->stats().evaluations;
    stats_.seconds = watch.ElapsedSeconds();
    return SolveResult::kUnknown;
  }

  // The cross-backend soundness oracle: decisive contestants answered the same finite
  // question over identical grounding and domains, so they must agree.
  if (results[0] != SolveResult::kUnknown && results[1] != SolveResult::kUnknown) {
    NOCTUA_CHECK_MSG(results[0] == results[1],
                     "portfolio backends disagree: dfs and cdcl returned different "
                     "verdicts for one query");
  }
  AccumulatePortfolioRace(w);
  stats_ = race_backends_[w]->stats();
  stats_.portfolio_winner = w;
  model_ = race_backends_[w]->model();
  stats_.seconds = watch.ElapsedSeconds();
  return results[w];
}

}  // namespace noctua::smt
