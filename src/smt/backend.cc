#include "src/smt/backend.h"

#include <cstdio>
#include <cstdlib>

#include "src/smt/cdcl.h"
#include "src/smt/portfolio.h"
#include "src/support/check.h"

namespace noctua::smt {

const char* BackendKindName(BackendKind k) {
  switch (k) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kDfs:
      return "dfs";
    case BackendKind::kCdcl:
      return "cdcl";
    case BackendKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

bool ParseBackendKind(const std::string& name, BackendKind* out) {
  if (name == "dfs") {
    *out = BackendKind::kDfs;
  } else if (name == "cdcl") {
    *out = BackendKind::kCdcl;
  } else if (name == "portfolio") {
    *out = BackendKind::kPortfolio;
  } else {
    return false;
  }
  return true;
}

BackendKind BackendKindFromEnv() {
  const char* env = std::getenv("NOCTUA_SOLVER");
  if (env == nullptr || *env == '\0') {
    return BackendKind::kDfs;
  }
  BackendKind k;
  if (ParseBackendKind(env, &k)) {
    return k;
  }
  // Same discipline as NOCTUA_THREADS: reject with a one-shot warning rather than
  // silently absorbing a typo into the default.
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "noctua: ignoring NOCTUA_SOLVER=\"%s\" (expected dfs, cdcl, or "
                 "portfolio); using dfs\n",
                 env);
  }
  return BackendKind::kDfs;
}

BackendKind ResolveBackendKind(BackendKind k) {
  return k == BackendKind::kAuto ? BackendKindFromEnv() : k;
}

namespace {

// The bounded model finder behind the backend interface: a thin adapter over Solver.
class DfsBackend : public SolverBackend {
 public:
  explicit DfsBackend(const SolverOptions& options) : solver_(options) {}

  const char* name() const override { return "dfs"; }
  BackendCaps caps() const override {
    return BackendCaps{/*deterministic_budget=*/true, /*produces_model=*/true,
                       /*cancellable=*/true};
  }
  const SmtModel& model() const override { return solver_.model(); }
  const SolverStats& stats() const override { return solver_.stats(); }
  void set_cancel(const std::atomic<bool>* cancel) override { solver_.set_cancel(cancel); }

 protected:
  SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) override {
    return solver_.CheckSat(factory, assertions);
  }

 private:
  Solver solver_;
};

}  // namespace

std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options) {
  switch (ResolveBackendKind(kind)) {
    case BackendKind::kDfs:
      return std::make_unique<DfsBackend>(options);
    case BackendKind::kCdcl:
      return std::make_unique<CdclBackend>(options);
    case BackendKind::kPortfolio:
      return std::make_unique<PortfolioBackend>(options);
    case BackendKind::kAuto:
      break;  // ResolveBackendKind never returns kAuto
  }
  NOCTUA_UNREACHABLE("unresolved backend kind");
}

std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options) {
  return MakeBackend(options.backend, options);
}

}  // namespace noctua::smt
