#include "src/smt/backend.h"

#include "src/smt/cdcl.h"
#include "src/smt/portfolio.h"
#include "src/support/check.h"
#include "src/support/env.h"

namespace noctua::smt {

const char* BackendKindName(BackendKind k) {
  switch (k) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kDfs:
      return "dfs";
    case BackendKind::kCdcl:
      return "cdcl";
    case BackendKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

bool ParseBackendKind(const std::string& name, BackendKind* out) {
  if (name == "dfs") {
    *out = BackendKind::kDfs;
  } else if (name == "cdcl") {
    *out = BackendKind::kCdcl;
  } else if (name == "portfolio") {
    *out = BackendKind::kPortfolio;
  } else {
    return false;
  }
  return true;
}

BackendKind BackendKindFromEnv() {
  // Strict-parse discipline lives in env::EnumOr: unset means dfs, a typo is rejected
  // with a one-shot warning rather than silently absorbed into the default.
  std::string name = env::EnumOr("NOCTUA_SOLVER", {"dfs", "cdcl", "portfolio"}, "dfs");
  BackendKind k = BackendKind::kDfs;
  ParseBackendKind(name, &k);
  return k;
}

BackendKind ResolveBackendKind(BackendKind k) {
  return k == BackendKind::kAuto ? BackendKindFromEnv() : k;
}

bool ParseToggle(const std::string& value, Toggle* out) {
  bool on = false;
  if (!env::ParseOnOff(value, &on)) {
    return false;
  }
  *out = on ? Toggle::kOn : Toggle::kOff;
  return true;
}

bool SymmetryFromEnv() { return env::OnOffOr("NOCTUA_SYMMETRY", true); }

bool IncrementalFromEnv() { return env::OnOffOr("NOCTUA_INCREMENTAL", true); }

bool SymmetryEnabled(const SolverOptions& options) {
  return options.symmetry == Toggle::kAuto ? SymmetryFromEnv()
                                           : options.symmetry == Toggle::kOn;
}

bool IncrementalEnabled(const SolverOptions& options) {
  return options.incremental == Toggle::kAuto ? IncrementalFromEnv()
                                              : options.incremental == Toggle::kOn;
}

void SolverCounterSink::AddShared(const SolverStats& stats) {
  if (stats.incremental_reuse_hits > 0) {
    reuse_hits_.fetch_add(stats.incremental_reuse_hits, std::memory_order_relaxed);
  }
  if (stats.symmetry_pruned > 0) {
    symmetry_pruned_.fetch_add(stats.symmetry_pruned, std::memory_order_relaxed);
  }
  if (stats.restarts > 0) {
    cdcl_restarts_.fetch_add(stats.restarts, std::memory_order_relaxed);
  }
  if (stats.clauses_forgotten > 0) {
    cdcl_forgotten_.fetch_add(stats.clauses_forgotten, std::memory_order_relaxed);
  }
}

void SolverCounterSink::AddRace(int winner) {
  races_.fetch_add(1, std::memory_order_relaxed);
  if (winner == 0) {
    wins_dfs_.fetch_add(1, std::memory_order_relaxed);
  } else if (winner == 1) {
    wins_cdcl_.fetch_add(1, std::memory_order_relaxed);
  } else {
    undecided_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// Leaked, never destroyed: worker threads may still accumulate during static teardown.
SolverCounterSink& ProcessSinkStorage() {
  static SolverCounterSink* sink = new SolverCounterSink();
  return *sink;
}

thread_local SolverCounterSink* tls_sink = nullptr;

}  // namespace

SolverCounterSink& ProcessSolverCounters() { return ProcessSinkStorage(); }

SolverCounterSink* CurrentSolverCounterSink() {
  return tls_sink != nullptr ? tls_sink : &ProcessSinkStorage();
}

ScopedSolverCounterSink::ScopedSolverCounterSink(SolverCounterSink* sink) : prev_(tls_sink) {
  if (sink != nullptr) {
    tls_sink = sink;
  }
}

ScopedSolverCounterSink::~ScopedSolverCounterSink() { tls_sink = prev_; }

SolverSharedCounts GetSolverSharedCounts() { return ProcessSolverCounters().Shared(); }

PortfolioCounts GetPortfolioCounts() { return ProcessSolverCounters().Portfolio(); }

void AccumulateSolverSharedCounts(const SolverStats& stats) {
  SolverCounterSink* sink = CurrentSolverCounterSink();
  sink->AddShared(stats);
  // Process totals always accumulate, so lifetime counters (bench preambles) keep their
  // historical meaning even when a scoped engine sink is installed.
  if (sink != &ProcessSolverCounters()) {
    ProcessSolverCounters().AddShared(stats);
  }
}

void AccumulatePortfolioRace(int winner) {
  SolverCounterSink* sink = CurrentSolverCounterSink();
  sink->AddRace(winner);
  if (sink != &ProcessSolverCounters()) {
    ProcessSolverCounters().AddRace(winner);
  }
}

namespace {

// The bounded model finder behind the backend interface: a thin adapter over Solver.
class DfsBackend : public SolverBackend {
 public:
  explicit DfsBackend(const SolverOptions& options) : solver_(options) {}

  const char* name() const override { return "dfs"; }
  BackendCaps caps() const override {
    return BackendCaps{/*deterministic_budget=*/true, /*produces_model=*/true,
                       /*cancellable=*/true, /*incremental=*/true};
  }
  const SmtModel& model() const override { return solver_.model(); }
  const SolverStats& stats() const override { return solver_.stats(); }
  void set_cancel(const std::atomic<bool>* cancel) override { solver_.set_cancel(cancel); }

 protected:
  SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) override {
    SolveResult r = solver_.CheckSat(factory, assertions);
    AccumulateSolverSharedCounts(solver_.stats());
    return r;
  }

 private:
  Solver solver_;
};

}  // namespace

std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options) {
  switch (ResolveBackendKind(kind)) {
    case BackendKind::kDfs:
      return std::make_unique<DfsBackend>(options);
    case BackendKind::kCdcl:
      return std::make_unique<CdclBackend>(options);
    case BackendKind::kPortfolio:
      return std::make_unique<PortfolioBackend>(options);
    case BackendKind::kAuto:
      break;  // ResolveBackendKind never returns kAuto
  }
  NOCTUA_UNREACHABLE("unresolved backend kind");
}

std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options) {
  return MakeBackend(options.backend, options);
}

}  // namespace noctua::smt
