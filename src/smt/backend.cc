#include "src/smt/backend.h"

#include <cstdio>
#include <cstdlib>

#include "src/smt/cdcl.h"
#include "src/smt/portfolio.h"
#include "src/support/check.h"

namespace noctua::smt {

const char* BackendKindName(BackendKind k) {
  switch (k) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kDfs:
      return "dfs";
    case BackendKind::kCdcl:
      return "cdcl";
    case BackendKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

bool ParseBackendKind(const std::string& name, BackendKind* out) {
  if (name == "dfs") {
    *out = BackendKind::kDfs;
  } else if (name == "cdcl") {
    *out = BackendKind::kCdcl;
  } else if (name == "portfolio") {
    *out = BackendKind::kPortfolio;
  } else {
    return false;
  }
  return true;
}

BackendKind BackendKindFromEnv() {
  const char* env = std::getenv("NOCTUA_SOLVER");
  if (env == nullptr || *env == '\0') {
    return BackendKind::kDfs;
  }
  BackendKind k;
  if (ParseBackendKind(env, &k)) {
    return k;
  }
  // Same discipline as NOCTUA_THREADS: reject with a one-shot warning rather than
  // silently absorbing a typo into the default.
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "noctua: ignoring NOCTUA_SOLVER=\"%s\" (expected dfs, cdcl, or "
                 "portfolio); using dfs\n",
                 env);
  }
  return BackendKind::kDfs;
}

BackendKind ResolveBackendKind(BackendKind k) {
  return k == BackendKind::kAuto ? BackendKindFromEnv() : k;
}

bool ParseToggle(const std::string& value, Toggle* out) {
  if (value == "on") {
    *out = Toggle::kOn;
    return true;
  }
  if (value == "off") {
    *out = Toggle::kOff;
    return true;
  }
  return false;
}

namespace {

// NOCTUA_SOLVER's strict-parse discipline applied to an on/off knob: unset means on,
// malformed values warn once on stderr and fall back to on.
bool ToggleFromEnv(const char* var, bool* warned) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') {
    return true;
  }
  Toggle t;
  if (ParseToggle(env, &t)) {
    return t == Toggle::kOn;
  }
  if (!*warned) {
    *warned = true;
    std::fprintf(stderr, "noctua: ignoring %s=\"%s\" (expected on or off); using on\n", var,
                 env);
  }
  return true;
}

}  // namespace

bool SymmetryFromEnv() {
  static bool warned = false;
  return ToggleFromEnv("NOCTUA_SYMMETRY", &warned);
}

bool IncrementalFromEnv() {
  static bool warned = false;
  return ToggleFromEnv("NOCTUA_INCREMENTAL", &warned);
}

bool SymmetryEnabled(const SolverOptions& options) {
  return options.symmetry == Toggle::kAuto ? SymmetryFromEnv()
                                           : options.symmetry == Toggle::kOn;
}

bool IncrementalEnabled(const SolverOptions& options) {
  return options.incremental == Toggle::kAuto ? IncrementalFromEnv()
                                              : options.incremental == Toggle::kOn;
}

namespace {

// Process-wide optimization tallies (see GetSolverSharedCounts).
std::atomic<uint64_t> g_reuse_hits{0};
std::atomic<uint64_t> g_symmetry_pruned{0};
std::atomic<uint64_t> g_cdcl_restarts{0};
std::atomic<uint64_t> g_cdcl_forgotten{0};

}  // namespace

SolverSharedCounts GetSolverSharedCounts() {
  SolverSharedCounts c;
  c.incremental_reuse_hits = g_reuse_hits.load(std::memory_order_relaxed);
  c.symmetry_pruned = g_symmetry_pruned.load(std::memory_order_relaxed);
  c.cdcl_restarts = g_cdcl_restarts.load(std::memory_order_relaxed);
  c.cdcl_clauses_forgotten = g_cdcl_forgotten.load(std::memory_order_relaxed);
  return c;
}

void AccumulateSolverSharedCounts(const SolverStats& stats) {
  if (stats.incremental_reuse_hits > 0) {
    g_reuse_hits.fetch_add(stats.incremental_reuse_hits, std::memory_order_relaxed);
  }
  if (stats.symmetry_pruned > 0) {
    g_symmetry_pruned.fetch_add(stats.symmetry_pruned, std::memory_order_relaxed);
  }
  if (stats.restarts > 0) {
    g_cdcl_restarts.fetch_add(stats.restarts, std::memory_order_relaxed);
  }
  if (stats.clauses_forgotten > 0) {
    g_cdcl_forgotten.fetch_add(stats.clauses_forgotten, std::memory_order_relaxed);
  }
}

namespace {

// The bounded model finder behind the backend interface: a thin adapter over Solver.
class DfsBackend : public SolverBackend {
 public:
  explicit DfsBackend(const SolverOptions& options) : solver_(options) {}

  const char* name() const override { return "dfs"; }
  BackendCaps caps() const override {
    return BackendCaps{/*deterministic_budget=*/true, /*produces_model=*/true,
                       /*cancellable=*/true, /*incremental=*/true};
  }
  const SmtModel& model() const override { return solver_.model(); }
  const SolverStats& stats() const override { return solver_.stats(); }
  void set_cancel(const std::atomic<bool>* cancel) override { solver_.set_cancel(cancel); }

 protected:
  SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) override {
    SolveResult r = solver_.CheckSat(factory, assertions);
    AccumulateSolverSharedCounts(solver_.stats());
    return r;
  }

 private:
  Solver solver_;
};

}  // namespace

std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options) {
  switch (ResolveBackendKind(kind)) {
    case BackendKind::kDfs:
      return std::make_unique<DfsBackend>(options);
    case BackendKind::kCdcl:
      return std::make_unique<CdclBackend>(options);
    case BackendKind::kPortfolio:
      return std::make_unique<PortfolioBackend>(options);
    case BackendKind::kAuto:
      break;  // ResolveBackendKind never returns kAuto
  }
  NOCTUA_UNREACHABLE("unresolved backend kind");
}

std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options) {
  return MakeBackend(options.backend, options);
}

}  // namespace noctua::smt
