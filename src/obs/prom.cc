#include "src/obs/prom.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/obs/obs.h"

namespace noctua::obs {

namespace {

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Renders {tenant="...",app="...",mode="..."} from a label set, omitting empty values
// and appending `extra` (used for the `le` bucket label). Returns "" when nothing set.
std::string LabelBlock(const MetricLabels& labels, const std::string& extra) {
  std::string body;
  auto add = [&](const char* key, const std::string& value) {
    if (value.empty()) {
      return;
    }
    if (!body.empty()) {
      body += ",";
    }
    body += std::string(key) + "=\"" + EscapeLabelValue(value) + "\"";
  };
  add("tenant", labels.tenant);
  add("app", labels.app);
  add("mode", labels.mode);
  if (!extra.empty()) {
    if (!body.empty()) {
      body += ",";
    }
    body += extra;
  }
  return body.empty() ? "" : "{" + body + "}";
}

// Inclusive integer upper bound of log-scale bucket b, as its `le` label value.
std::string BucketLe(size_t b) {
  if (b == 0) {
    return "0";
  }
  if (b >= 64) {
    return std::to_string(UINT64_MAX);
  }
  return std::to_string((uint64_t{1} << b) - 1);
}

// One histogram's series block (buckets, +Inf, sum, count) for one label set.
void RenderHistSeries(const std::string& name, const MetricLabels& labels,
                      const HistBucketCounts& bc, std::string* out) {
  size_t highest = 0;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    if (bc.buckets[b] > 0) {
      highest = b;
    }
  }
  uint64_t cum = 0;
  for (size_t b = 0; b <= highest; ++b) {
    cum += bc.buckets[b];
    *out += name + "_bucket" + LabelBlock(labels, "le=\"" + BucketLe(b) + "\"") + " " +
            std::to_string(cum) + "\n";
  }
  *out += name + "_bucket" + LabelBlock(labels, "le=\"+Inf\"") + " " +
          std::to_string(bc.count) + "\n";
  *out += name + "_sum" + LabelBlock(labels, "") + " " + std::to_string(bc.sum) + "\n";
  *out += name + "_count" + LabelBlock(labels, "") + " " + std::to_string(bc.count) +
          "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& dotted) {
  std::string out = "noctua_";
  out.reserve(dotted.size() + out.size());
  for (char c : dotted) {
    out += c == '.' ? '_' : c;
  }
  return out;
}

std::string PrometheusText(const std::vector<PromSample>& extras) {
  std::string out;
  for (const PromSample& s : extras) {
    out += "# HELP " + s.name + " " + s.help + "\n";
    out += "# TYPE " + s.name + " " + s.type + "\n";
    std::string body;
    for (const auto& [key, value] : s.labels) {
      if (!body.empty()) {
        body += ",";
      }
      body += key + "=\"" + EscapeLabelValue(value) + "\"";
    }
    out += s.name + (body.empty() ? "" : "{" + body + "}") + " " +
           std::to_string(s.value) + "\n";
  }

  std::vector<LabeledCounterRow> labeled_counters = LiveLabeledCounters();
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    Counter c = static_cast<Counter>(i);
    uint64_t total = LiveCounter(c);
    std::vector<const LabeledCounterRow*> rows;
    for (const LabeledCounterRow& row : labeled_counters) {
      if (row.counter == c) {
        rows.push_back(&row);
      }
    }
    if (total == 0 && rows.empty()) {
      continue;
    }
    std::string name = PrometheusMetricName(CounterName(c)) + "_total";
    out += "# HELP " + name + " obs counter " + CounterName(c) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(total) + "\n";
    for (const LabeledCounterRow* row : rows) {
      out += name + LabelBlock(row->labels, "") + " " + std::to_string(row->value) +
             "\n";
    }
  }

  std::vector<LabeledHistRow> labeled_hists = LiveLabeledHistograms();
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    Hist h = static_cast<Hist>(i);
    HistBucketCounts bc = LiveHistogramBuckets(h);
    std::vector<const LabeledHistRow*> rows;
    for (const LabeledHistRow& row : labeled_hists) {
      if (row.hist == h) {
        rows.push_back(&row);
      }
    }
    if (bc.count == 0 && rows.empty()) {
      continue;
    }
    std::string name = PrometheusMetricName(HistName(h));
    out += "# HELP " + name + " obs histogram " + HistName(h) + "\n";
    out += "# TYPE " + name + " histogram\n";
    if (bc.count > 0) {
      RenderHistSeries(name, MetricLabels{}, bc, &out);
    }
    for (const LabeledHistRow* row : rows) {
      RenderHistSeries(name, row->labels, row->buckets, &out);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------------------
// Checker

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(), tail);
}

// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // in file order
  double value = 0;
};

// Parses `name{k="v",...} value`. Returns false with *error on malformed input.
bool ParseSampleLine(const std::string& line, Sample* out, std::string* error) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') {
    ++i;
  }
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *error = "bad metric name in line: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() || line[eq + 1] != '"') {
        *error = "bad label in line: " + line;
        return false;
      }
      std::string key = line.substr(i, eq - i);
      std::string value;
      size_t j = eq + 2;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\' && j + 1 < line.size()) {
          char esc = line[j + 1];
          value += esc == 'n' ? '\n' : esc;
          j += 2;
        } else {
          value += line[j];
          ++j;
        }
      }
      if (j >= line.size()) {
        *error = "unterminated label value in line: " + line;
        return false;
      }
      out->labels.emplace_back(std::move(key), std::move(value));
      i = j + 1;
      if (i < line.size() && line[i] == ',') {
        ++i;
      }
    }
    if (i >= line.size() || line[i] != '}') {
      *error = "unterminated label block in line: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "missing value in line: " + line;
    return false;
  }
  std::string value_text = line.substr(i + 1);
  const char* begin = value_text.c_str();
  char* end = nullptr;
  out->value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    *error = "unparseable value in line: " + line;
    return false;
  }
  return true;
}

// Canonical key of a label set with `le` removed — identifies one histogram series
// family across its _bucket/_sum/_count lines.
std::string LabelKey(const Sample& s) {
  std::vector<std::pair<std::string, std::string>> labels;
  for (const auto& kv : s.labels) {
    if (kv.first != "le") {
      labels.push_back(kv);
    }
  }
  std::sort(labels.begin(), labels.end());
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k + "=" + v + ";";
  }
  return key;
}

}  // namespace

bool CheckPrometheusText(const std::string& text, std::string* error,
                         size_t* num_series) {
  // (histogram base name, label key) -> cumulative bucket values in file order, with
  // the le of each; plus whether +Inf/_sum/_count were seen and the companion values.
  struct HistFamily {
    std::vector<std::pair<std::string, double>> buckets;  // (le, cumulative value)
    bool has_inf = false;
    double inf_value = 0;
    bool has_sum = false;
    bool has_count = false;
    double count_value = 0;
  };
  std::map<std::pair<std::string, std::string>, HistFamily> hists;

  size_t series = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, name;
      comment >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") {
        *error = "unknown comment form: " + line;
        return false;
      }
      if (!ValidMetricName(name)) {
        *error = "bad metric name in comment: " + line;
        return false;
      }
      continue;
    }
    Sample s;
    if (!ParseSampleLine(line, &s, error)) {
      return false;
    }
    ++series;

    auto ends_with = [&](const char* suffix) {
      std::string suf(suffix);
      return s.name.size() > suf.size() &&
             s.name.compare(s.name.size() - suf.size(), suf.size(), suf) == 0;
    };
    if (ends_with("_bucket")) {
      std::string base = s.name.substr(0, s.name.size() - 7);
      HistFamily& fam = hists[{base, LabelKey(s)}];
      std::string le;
      for (const auto& [k, v] : s.labels) {
        if (k == "le") {
          le = v;
        }
      }
      if (le.empty()) {
        *error = "bucket series without le label: " + line;
        return false;
      }
      if (le == "+Inf") {
        fam.has_inf = true;
        fam.inf_value = s.value;
      }
      fam.buckets.emplace_back(le, s.value);
    } else if (ends_with("_sum")) {
      hists[{s.name.substr(0, s.name.size() - 4), LabelKey(s)}].has_sum = true;
    } else if (ends_with("_count")) {
      HistFamily& fam = hists[{s.name.substr(0, s.name.size() - 6), LabelKey(s)}];
      fam.has_count = true;
      fam.count_value = s.value;
    }
  }

  for (const auto& [key, fam] : hists) {
    const std::string& base = key.first;
    if (fam.buckets.empty()) {
      // A _sum/_count pair with no buckets is not a histogram (e.g. a summary); the
      // exposition here never emits those, but don't reject other producers' output.
      continue;
    }
    std::string where = base + (key.second.empty() ? "" : "{" + key.second + "}");
    for (size_t i = 1; i < fam.buckets.size(); ++i) {
      if (fam.buckets[i].second < fam.buckets[i - 1].second) {
        *error = "non-monotone cumulative buckets in " + where + " at le=" +
                 fam.buckets[i].first;
        return false;
      }
    }
    if (!fam.has_inf) {
      *error = "histogram " + where + " missing le=\"+Inf\" bucket";
      return false;
    }
    if (!fam.has_count) {
      *error = "histogram " + where + " missing _count";
      return false;
    }
    if (!fam.has_sum) {
      *error = "histogram " + where + " missing _sum";
      return false;
    }
    if (fam.count_value != fam.inf_value) {
      *error = "histogram " + where + " _count != +Inf bucket";
      return false;
    }
  }
  if (num_series != nullptr) {
    *num_series = series;
  }
  return true;
}

}  // namespace noctua::obs
