// Structured end-of-run report assembled from a stopped obs::Collector: phase timings,
// every non-zero counter, histogram summaries, and the top-N slowest pairs. Serialized
// as JSON (machine side) and rendered as aligned text tables (human side).
#ifndef SRC_OBS_REPORT_H_
#define SRC_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace noctua::obs {

// One row of the "where do I optimize next" table: a pair-category span, slowest first.
struct SlowPair {
  std::string name;  // e.g. "addTodoItem|removeTodoItem#com"
  int64_t micros = 0;
  uint64_t solver_nodes = 0;  // from the span's "solver_nodes" arg, 0 when absent
  uint64_t cache_hits = 0;    // from the span's "cache_hits" arg
};

struct CounterRow {
  std::string name;
  uint64_t value = 0;
};

struct HistRow {
  std::string name;
  HistSummary summary;
};

struct RunReport {
  std::string app;
  double total_seconds = 0.0;
  double analyze_seconds = 0.0;
  double verify_seconds = 0.0;
  uint64_t pairs_checked = 0;
  double pairs_per_second = 0.0;  // checked pairs / verify_seconds
  size_t trace_events = 0;
  std::vector<std::string> span_categories;
  std::vector<CounterRow> counters;  // non-zero counters, enum order
  std::vector<HistRow> histograms;   // non-empty histograms, enum order
  std::vector<SlowPair> slow_pairs;  // top-N by duration, slowest first

  // Compact JSON object (no trailing newline).
  std::string ToJson() const;
  // Aligned text tables: a summary block, the counter table, the histogram table, and
  // the slowest-pairs table.
  std::string ToTable() const;
};

// Builds the report from a stopped collector. `top_slowest_pairs` comes from
// collector.options(). Phase seconds are passed by the owner (Pipeline) because the
// collector only sees spans, not which one the caller considers "the analyze phase".
RunReport BuildRunReport(const Collector& collector, const std::string& app,
                         double total_seconds, double analyze_seconds,
                         double verify_seconds);

}  // namespace noctua::obs

#endif  // SRC_OBS_REPORT_H_
