// Observability for the Noctua stack: scoped spans, typed counters, and log-scale
// histograms feeding a process-wide collector that exports Chrome trace-event JSON
// (loadable in chrome://tracing and Perfetto) and a structured RunReport.
//
// Design contract:
//
//   * Zero cost when off. Every entry point — span construction, Add, Observe — starts
//     with one relaxed atomic load of the global enabled flag and returns immediately
//     when collection is off: no clock read, no allocation, no lock. Call sites that
//     would pay to *build* an argument (a dynamic span name, a derived value) must guard
//     with obs::Enabled() themselves.
//   * Thread-safe by per-thread buffering. Each recording thread appends span events to
//     its own buffer under a buffer-local mutex that is uncontended in steady state (the
//     only other locker is the end-of-run snapshot), so concurrent verification workers
//     never serialize on a shared sink. Counters and histogram buckets are plain
//     relaxed atomics.
//   * One collector at a time. A Collector installs itself as the process-global sink
//     (resetting counters and buffers), records until Stop(), and then exposes the
//     snapshot. Pipeline::Run owns this wiring when PipelineOptions::obs.enabled is set;
//     nothing else in the library installs collectors, it only feeds whatever is active.
//
// Instrumentation is fed at aggregation points (end of a check, end of a run), never in
// per-node inner loops — the solver counts its own nodes and the checker flushes the
// totals, so the hot DFS stays untouched.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace noctua::obs {

// ---------------------------------------------------------------------------------------
// Options

struct ObsOptions {
  // Master switch. False (the default) keeps every probe at its one-atomic-load fast
  // path; nothing is recorded and no report is built.
  bool enabled = false;
  // When non-empty, the collector writes Chrome trace-event JSON here at the end of the
  // run ("" = keep the trace in memory only).
  std::string trace_out;
  // How many of the slowest pairs the RunReport lists (the "what do I optimize next"
  // table).
  size_t top_slowest_pairs = 10;
};

// ---------------------------------------------------------------------------------------
// Span categories (the Chrome-trace "cat" field). A fixed taxonomy, not free-form
// strings, so traces from different runs aggregate cleanly.

inline constexpr const char* kCatPipeline = "pipeline";        // whole-stage phases
inline constexpr const char* kCatAnalyze = "analyze";          // symbolic path exploration
inline constexpr const char* kCatVerify = "verify";            // restriction-set assembly
inline constexpr const char* kCatPair = "pair";                // one unordered pair
inline constexpr const char* kCatEncode = "encode";            // SMT query construction
inline constexpr const char* kCatSolve = "solve";              // bounded model finder
inline constexpr const char* kCatCache = "cache";              // verdict-cache probes
inline constexpr const char* kCatIncremental = "incremental";  // artifact store I/O
inline constexpr const char* kCatSim = "sim";                  // geo-replication simulator
inline constexpr const char* kCatService = "service";          // daemon request handling

// ---------------------------------------------------------------------------------------
// Typed counters. Monotonic uint64 sums over one collector run.

enum class Counter : uint8_t {
  // Verifier pair loop.
  kPairsChecked,
  kPairsPrefiltered,
  kSolverChecks,
  kCacheHits,
  kCacheMisses,
  kCacheReplayed,
  kCacheEvictions,
  kPoolSteals,
  kPoolTasks,
  // SMT backend (flushed once per solver query).
  kSolverNodes,
  kSolverAssignments,
  kGroundExpansions,
  kSimplifyHits,
  kCdclConflicts,
  kCdclLearnedClauses,
  kSolverIncrementalReuse,
  kSolverSymmetryPruned,
  kCdclRestarts,
  kCdclClausesForgotten,
  kPortfolioRaces,
  kPortfolioWinsDfs,
  kPortfolioWinsCdcl,
  kPortfolioUndecided,
  // Analyzer / incremental engine.
  kEndpointsAnalyzed,
  kEndpointsMemoized,
  kPairsReplayed,
  kPairsComputed,
  kParanoiaRechecks,
  kArtifactLoads,
  kArtifactLoadFailures,
  kArtifactSaves,
  kArtifactSaveFailures,
  // Geo-replication simulator (flushed once per Run).
  kSimRequestsCompleted,
  kSimMessagesSent,
  kSimMessagesDropped,
  kSimRetransmissions,
  kSimDuplicatesIgnored,
  kSimEffectsReplayed,
  kSimReplicaCrashes,
  kSimReplicaRecoveries,
  kSimConflictViolations,
  // Runtime enforcement (lease coordinator; flushed once per Run).
  kSimLeaseAcquires,
  kSimLeaseExpiries,
  kSimFencingRejections,
  kSimDegradations,
  kSimFenceHeldEffects,
  // Noctua-as-a-service daemon (src/service).
  kServiceRequests,          // requests admitted and executed
  kServiceRequestsOk,        // ... that completed successfully
  kServiceRequestsFailed,    // ... that failed (bad input, engine error)
  kServiceRejected,          // requests refused by admission control (503)
  kServiceVerdicts,          // pair verdicts served, labeled by source when labeled
  kNumCounters,  // sentinel
};

// Dotted metric name, e.g. "verifier.pairs_checked", "smt.solver_nodes", "sim.messages_sent".
const char* CounterName(Counter c);

// Adds `delta` to counter `c` of the active collector; no-op when collection is off.
void Add(Counter c, uint64_t delta = 1);

// ---------------------------------------------------------------------------------------
// Log-scale histograms. Bucket b >= 1 holds values in [2^(b-1), 2^b); bucket 0 holds
// exactly {0}. 65 buckets (0 plus one per bit width) cover the full uint64 range, so
// Observe never clips.

enum class Hist : uint8_t {
  kPairMicros,               // wall time of one non-prefiltered pair (both rules)
  kSolveMicros,              // wall time of one solver query
  kSolverNodesPerQuery,      // DFS nodes of one solver query
  kSolverAssignmentsPerQuery,  // substitute-and-simplify evaluations of one query
  kGroundExpansionsPerQuery,   // binder expansions of one query's grounding
  kLeaseAcquireMicros,         // simulated admission-to-grant latency of one lease
  kServiceRequestMicros,       // end-to-end wall time of one admitted service request
  kServiceQueueWaitMicros,     // admission-to-dequeue wait of one admitted request
  kServiceHandleMicros,        // worker execution time of one request (excludes the wait)
  kNumHists,  // sentinel
};

const char* HistName(Hist h);

// Records one sample; no-op when collection is off.
void Observe(Hist h, uint64_t value);

inline constexpr size_t kHistBuckets = 65;

// Bucket index of a value (0 for 0, otherwise bit_width). Exposed for tests.
size_t HistBucketFor(uint64_t value);
// Smallest value that lands in bucket `b` (0 for bucket 0, else 2^(b-1)).
uint64_t HistBucketLowerBound(size_t b);

// The first kHistReservoir samples of every histogram are additionally kept verbatim,
// so percentiles of small-count histograms (service latencies: one sample per request)
// are EXACT, not bucket-quantized. Past the reservoir, percentiles interpolate linearly
// inside the bucket containing the rank (clamped to [min, max]) instead of reporting
// the bucket lower bound — a p99 can no longer jump 2x just by crossing a bucket edge.
inline constexpr size_t kHistReservoir = 256;

// Summary of one histogram after a run. Percentiles are exact while count <=
// kHistReservoir and intra-bucket interpolations afterwards (see above).
struct HistSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

// ---------------------------------------------------------------------------------------
// Spans

// True while a collector is recording. The one-load fast-path gate; also the guard call
// sites use before building dynamic span names.
bool Enabled();

// True while a collector object is installed (it may have been stopped already). Used by
// Pipeline to avoid installing a nested collector when a bench already owns one.
bool Active();

// Live (mid-recording) reads of the active recording session. Unlike
// Collector::counter/histogram, these do NOT require Stop(): a long-lived daemon
// serving /metrics reads them while its collector keeps recording. Values are
// relaxed-atomic snapshots — monotonic between reads of one session, zero when no
// collector is recording.
uint64_t LiveCounter(Counter c);
HistSummary LiveHistogram(Hist h);

// Raw per-bucket snapshot of one live histogram, for exposition formats that need the
// full distribution (Prometheus cumulative _bucket series), not just a summary.
struct HistBucketCounts {
  uint64_t buckets[kHistBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
};
HistBucketCounts LiveHistogramBuckets(Hist h);

// ---------------------------------------------------------------------------------------
// Labeled metrics. The same counters/histograms, broken down by a fixed low-cardinality
// label tuple so a multi-tenant daemon can answer "which tenant is slow". Three
// dimensions only — tenant, app, and a per-metric third value ("mode"): cold/warm for
// request metrics, the verdict source (computed/replayed/prefiltered) for
// service.verdicts. Cardinality is bounded: past kMaxLabelSets distinct tuples, new
// tuples fold into {kLabelOverflow, kLabelOverflow, mode} instead of growing the
// registry without limit. Entry points are zero-cost when collection is off (one
// relaxed load); when on they take a registry mutex — they belong on per-request
// aggregation points, never in per-pair inner loops.

struct MetricLabels {
  std::string tenant;
  std::string app;
  std::string mode;
};

inline constexpr size_t kMaxLabelSets = 256;
inline constexpr const char* kLabelOverflow = "_other";

// No-ops when collection is off; AddLabeled also drops delta == 0 (no empty rows).
void AddLabeled(Counter c, const MetricLabels& labels, uint64_t delta = 1);
void ObserveLabeled(Hist h, const MetricLabels& labels, uint64_t value);

struct LabeledCounterRow {
  MetricLabels labels;
  Counter counter = Counter::kNumCounters;
  uint64_t value = 0;
};
struct LabeledHistRow {
  MetricLabels labels;
  Hist hist = Hist::kNumHists;
  HistSummary summary;
  HistBucketCounts buckets;
};

// Mid-recording snapshots of every labeled row, in deterministic (metric, labels)
// order; empty when no collector is recording.
std::vector<LabeledCounterRow> LiveLabeledCounters();
std::vector<LabeledHistRow> LiveLabeledHistograms();

// RAII span: records [construction, destruction) into the active collector's buffer for
// this thread. Constructing with collection off is free (no clock read). Up to
// kMaxSpanArgs numeric arguments can be attached; they export as the Chrome-trace
// "args" object (e.g. per-pair solver counters).
class ScopedSpan {
 public:
  static constexpr size_t kMaxSpanArgs = 4;

  // Static-name form: safe to call unguarded on hot paths.
  ScopedSpan(const char* name, const char* category);
  // Dynamic-name form: callers should only build `name` under obs::Enabled().
  ScopedSpan(std::string name, const char* category);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a numeric argument (dropped beyond kMaxSpanArgs or when inactive).
  void Arg(const char* key, uint64_t value);

  bool active() const { return active_; }

 private:
  void Start(const char* category);

  std::string name_;
  const char* category_ = nullptr;
  int64_t start_us_ = 0;
  bool active_ = false;
  size_t num_args_ = 0;
  std::pair<const char*, uint64_t> args_[kMaxSpanArgs];
};

// One finished span, as exported. `tid` is a small per-thread index assigned in
// registration order (the calling thread of the collector is tid 1). `trace` is the
// request-scoped trace the span was recorded under (0 = none).
struct TraceEvent {
  std::string name;
  const char* category = nullptr;
  int64_t ts_us = 0;   // start, microseconds since collector install
  int64_t dur_us = 0;  // duration, microseconds
  int tid = 0;
  uint64_t trace = 0;
  std::vector<std::pair<const char*, uint64_t>> args;
};

// ---------------------------------------------------------------------------------------
// Request-scoped trace context. A service request gets one context for its lifetime;
// every span closed while the context is installed is stamped with its trace id, and —
// when the request asked for an inline trace — also copied into its TraceCapture, so
// the request's spans form one extractable tree even though they interleave with other
// requests' spans in the shared per-thread buffers. The context is thread-local;
// AnalyzeRestrictions re-installs the submitting thread's context inside every pool
// task, so per-pair verify spans inherit the request that scheduled them.

// A per-request span sink. Thread-safe: pool workers append concurrently; the owner
// snapshots after the request's spans have all closed (the ParallelFor barrier plus the
// request scope guarantee quiescence). Recording requires an active collector — the
// capture rides the same Enabled() gate as every other probe.
class TraceCapture {
 public:
  void Record(const TraceEvent& ev);
  // Events sorted by start timestamp.
  std::vector<TraceEvent> Snapshot() const;
  // Chrome trace-event JSON of the captured tree: {"traceEvents": [...]}, with the
  // request's external trace id injected into every event's args (string-valued) and
  // echoed in otherData. Loadable by chrome://tracing and Perfetto.
  std::string ChromeTraceJson(const std::string& trace_id) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

struct TraceContext {
  uint64_t trace = 0;               // 0 = no request context
  TraceCapture* capture = nullptr;  // optional inline-trace sink
};

// The calling thread's current context ({0, nullptr} when none). Cheap: two
// thread-local reads; safe to call with collection off.
TraceContext CurrentTraceContext();

// RAII: installs `ctx` as the calling thread's context, restoring the previous one on
// destruction. Used by the service worker (request scope) and by pool tasks
// (propagation of the submitter's context).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ScopedTraceContext(uint64_t trace, TraceCapture* capture);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// Steady-clock now in microseconds — the timestamp domain RecordSpan expects. Callers
// stamp a moment (e.g. admission enqueue) and later record the finished interval.
int64_t SteadyNowMicros();

// Records an already-measured span [start_us, end_us) (SteadyNowMicros domain) into the
// active collector and the current trace context, exactly as if a ScopedSpan had lived
// that long on this thread. For intervals that cannot be an RAII scope — queue wait
// starts on the reader thread and ends on the worker. No-op when collection is off.
void RecordSpan(const char* name, const char* category, int64_t start_us, int64_t end_us);

// ---------------------------------------------------------------------------------------
// Collector

// Owns one recording session: installs itself as the process-global sink on
// construction (fatal if another collector is already installed), records until Stop(),
// and exposes the snapshot afterwards. Stop() is idempotent and also runs from the
// destructor. Counters and buffers are reset at install, so two consecutive runs never
// bleed into each other.
class Collector {
 public:
  explicit Collector(ObsOptions options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  const ObsOptions& options() const { return options_; }

  // Disables recording and snapshots events, counters, and histograms. Must be called
  // (directly or via the destructor) after all recording threads have quiesced — for the
  // pipeline that is guaranteed by ParallelFor's completion barrier.
  void Stop();

  // Everything below requires Stop() to have run.
  const std::vector<TraceEvent>& events() const;
  uint64_t counter(Counter c) const;
  HistSummary histogram(Hist h) const;
  // Distinct span categories seen, e.g. {"analyze", "encode", "solve", "cache"}.
  std::set<std::string> SpanCategories() const;

  // Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit": "ms",
  // "otherData": {"counters": {...}}}. Loadable by chrome://tracing and Perfetto.
  std::string ChromeTraceJson() const;
  // Writes ChromeTraceJson to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  ObsOptions options_;
  bool stopped_ = false;
  std::vector<TraceEvent> events_;
  uint64_t counters_[static_cast<size_t>(Counter::kNumCounters)] = {};
  HistSummary hists_[static_cast<size_t>(Hist::kNumHists)] = {};
};

// Escapes a string for embedding in a JSON string literal (quotes, backslashes,
// control characters). Shared by the trace exporter and the RunReport serializer.
std::string JsonEscape(const std::string& s);

}  // namespace noctua::obs

#endif  // SRC_OBS_OBS_H_
