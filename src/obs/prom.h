// Prometheus text exposition (format version 0.0.4) of the live obs registry, plus a
// machine checker for it.
//
// Mapping rules, applied uniformly so a scrape config can be written once:
//   - Names: dotted obs names become underscored with a "noctua_" prefix
//     ("verifier.pairs_checked" -> "noctua_verifier_pairs_checked"); counters get the
//     conventional "_total" suffix.
//   - Counters: the process-wide value is the unlabeled series; labeled rows (tenant,
//     app, mode) are additional series of the same family. Empty label values are
//     omitted rather than emitted as "".
//   - Histograms: native 65-bucket log-scale histograms render as cumulative
//     `_bucket{le="..."}` series. Observations are integers, so bucket b (values in
//     [2^(b-1), 2^b)) has inclusive upper bound 2^b - 1 — that exact integer is the
//     `le` value. Buckets above the highest populated one are elided (they would all
//     repeat the total); `le="+Inf"`, `_sum`, and `_count` close the family.
//   - Families with no data (zero count, no labeled rows) are skipped entirely.
//
// CheckPrometheusText is the scrape-side contract test: it re-parses an exposition and
// verifies well-formedness plus the histogram invariants (monotone cumulative buckets,
// +Inf present, _count == +Inf bucket, _sum present). `noctua-cli metrics --check
// --format prometheus` and the service tests both run it.

#ifndef NOCTUA_SRC_OBS_PROM_H_
#define NOCTUA_SRC_OBS_PROM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace noctua::obs {

// "service.request_micros" -> "noctua_service_request_micros".
std::string PrometheusMetricName(const std::string& dotted);

// One extra sample injected by the caller — the server uses this for its own gauges
// (queue depth, in-flight, worker count) that live outside the obs registry.
struct PromSample {
  std::string name;  // full metric name, already prefixed
  std::string help;  // one-line HELP text
  std::string type;  // "gauge" | "counter"
  std::vector<std::pair<std::string, std::string>> labels;
  uint64_t value = 0;
};

// Renders the live registry (counters, histograms, labeled rows) plus `extras` as
// Prometheus text exposition. Ends with a trailing newline.
std::string PrometheusText(const std::vector<PromSample>& extras);

// Validates an exposition: parseable lines, legal metric names, and per-histogram
// cumulative-bucket invariants. On failure returns false with *error naming the first
// offending line or family. *num_series (optional) gets the number of sample lines.
bool CheckPrometheusText(const std::string& text, std::string* error,
                         size_t* num_series = nullptr);

}  // namespace noctua::obs

#endif  // NOCTUA_SRC_OBS_PROM_H_
