#include "src/obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "src/support/check.h"

namespace noctua::obs {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// One finished span as recorded by its owning thread. Fixed-size args keep the append
// allocation-free except for the name string.
struct RawSpan {
  std::string name;
  const char* cat = nullptr;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  size_t num_args = 0;
  std::pair<const char*, uint64_t> args[ScopedSpan::kMaxSpanArgs];
};

// Per-thread span sink. The owning thread appends under `mu`; the only other locker is
// the end-of-run snapshot, so the lock is uncontended while recording (this is what
// keeps concurrent workers from serializing on a shared buffer).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<RawSpan> spans;
  int tid = 0;
};

struct HistState {
  std::atomic<uint64_t> buckets[kHistBuckets];
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> min{UINT64_MAX};
  std::atomic<uint64_t> max{0};
};

struct Registry {
  std::atomic<bool> enabled{false};
  // Bumped on every install so a thread's cached buffer from a previous run is never
  // written into the current one.
  std::atomic<uint64_t> generation{0};
  std::atomic<int64_t> epoch_us{0};

  std::mutex mu;  // guards buffers, next_tid, active
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
  bool active = false;  // a Collector object is installed (recording or stopped)

  std::atomic<uint64_t> counters[static_cast<size_t>(Counter::kNumCounters)];
  HistState hists[static_cast<size_t>(Hist::kNumHists)];
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: recording may outlive static dtors
  return *r;
}

struct TlsSlot {
  std::shared_ptr<ThreadBuffer> buf;
  uint64_t gen = 0;
};

thread_local TlsSlot tls_slot;

// The calling thread's buffer for the current recording generation, registering it on
// first use; nullptr when collection raced off.
ThreadBuffer* CurrentBuffer() {
  Registry& reg = Reg();
  uint64_t gen = reg.generation.load(std::memory_order_acquire);
  if (tls_slot.gen != gen || tls_slot.buf == nullptr) {
    std::lock_guard<std::mutex> lk(reg.mu);
    if (!reg.enabled.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    tls_slot.buf = std::make_shared<ThreadBuffer>();
    tls_slot.buf->tid = reg.next_tid++;
    reg.buffers.push_back(tls_slot.buf);
    tls_slot.gen = gen;
  }
  return tls_slot.buf.get();
}

void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Snapshot + summary of one histogram's live atomics. Shared by the end-of-run
// Collector::Stop path and the mid-recording LiveHistogram path.
HistSummary SummarizeHist(const HistState& hs) {
  HistSummary out;
  out.count = hs.count.load(std::memory_order_relaxed);
  out.sum = hs.sum.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : hs.min.load(std::memory_order_relaxed);
  out.max = hs.max.load(std::memory_order_relaxed);
  // Percentiles at bucket resolution: the lower bound of the bucket holding the rank.
  uint64_t counts[kHistBuckets];
  for (size_t b = 0; b < kHistBuckets; ++b) {
    counts[b] = hs.buckets[b].load(std::memory_order_relaxed);
  }
  auto percentile = [&](double q) -> uint64_t {
    if (out.count == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(out.count));
    if (rank < 1) {
      rank = 1;
    }
    if (rank > out.count) {
      rank = out.count;
    }
    uint64_t seen = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) {
        return HistBucketLowerBound(b);
      }
    }
    return out.max;
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  out.p99 = percentile(0.99);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Names

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kPairsChecked:
      return "verifier.pairs_checked";
    case Counter::kPairsPrefiltered:
      return "verifier.pairs_prefiltered";
    case Counter::kSolverChecks:
      return "verifier.solver_checks";
    case Counter::kCacheHits:
      return "verifier.cache_hits";
    case Counter::kCacheMisses:
      return "verifier.cache_misses";
    case Counter::kCacheReplayed:
      return "verifier.cache_replayed";
    case Counter::kCacheEvictions:
      return "verifier.cache_evictions";
    case Counter::kPoolSteals:
      return "pool.steals";
    case Counter::kPoolTasks:
      return "pool.tasks";
    case Counter::kSolverNodes:
      return "smt.solver_nodes";
    case Counter::kSolverAssignments:
      return "smt.solver_assignments";
    case Counter::kGroundExpansions:
      return "smt.ground_expansions";
    case Counter::kSimplifyHits:
      return "smt.simplify_hits";
    case Counter::kCdclConflicts:
      return "smt.cdcl_conflicts";
    case Counter::kCdclLearnedClauses:
      return "smt.cdcl_learned_clauses";
    case Counter::kSolverIncrementalReuse:
      return "solver.incremental_reuse_hits";
    case Counter::kSolverSymmetryPruned:
      return "solver.symmetry_pruned_nodes";
    case Counter::kCdclRestarts:
      return "cdcl.restarts";
    case Counter::kCdclClausesForgotten:
      return "cdcl.clauses_forgotten";
    case Counter::kPortfolioRaces:
      return "smt.portfolio_races";
    case Counter::kPortfolioWinsDfs:
      return "smt.portfolio_wins_dfs";
    case Counter::kPortfolioWinsCdcl:
      return "smt.portfolio_wins_cdcl";
    case Counter::kPortfolioUndecided:
      return "smt.portfolio_undecided";
    case Counter::kEndpointsAnalyzed:
      return "analyzer.endpoints_analyzed";
    case Counter::kEndpointsMemoized:
      return "analyzer.endpoints_memoized";
    case Counter::kPairsReplayed:
      return "incremental.pairs_replayed";
    case Counter::kPairsComputed:
      return "incremental.pairs_computed";
    case Counter::kParanoiaRechecks:
      return "incremental.paranoia_rechecks";
    case Counter::kArtifactLoads:
      return "incremental.artifact_loads";
    case Counter::kArtifactLoadFailures:
      return "incremental.artifact_load_failures";
    case Counter::kArtifactSaves:
      return "incremental.artifact_saves";
    case Counter::kArtifactSaveFailures:
      return "incremental.artifact_save_failures";
    case Counter::kSimRequestsCompleted:
      return "sim.requests_completed";
    case Counter::kSimMessagesSent:
      return "sim.messages_sent";
    case Counter::kSimMessagesDropped:
      return "sim.messages_dropped";
    case Counter::kSimRetransmissions:
      return "sim.retransmissions";
    case Counter::kSimDuplicatesIgnored:
      return "sim.duplicates_ignored";
    case Counter::kSimEffectsReplayed:
      return "sim.effects_replayed";
    case Counter::kSimReplicaCrashes:
      return "sim.replica_crashes";
    case Counter::kSimReplicaRecoveries:
      return "sim.replica_recoveries";
    case Counter::kSimConflictViolations:
      return "sim.conflict_violations";
    case Counter::kSimLeaseAcquires:
      return "sim.lease_acquires";
    case Counter::kSimLeaseExpiries:
      return "sim.lease_expiries";
    case Counter::kSimFencingRejections:
      return "sim.fencing_rejections";
    case Counter::kSimDegradations:
      return "sim.degradations";
    case Counter::kSimFenceHeldEffects:
      return "sim.fence_held_effects";
    case Counter::kServiceRequests:
      return "service.requests";
    case Counter::kServiceRequestsOk:
      return "service.requests_ok";
    case Counter::kServiceRequestsFailed:
      return "service.requests_failed";
    case Counter::kServiceRejected:
      return "service.rejected";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

const char* HistName(Hist h) {
  switch (h) {
    case Hist::kPairMicros:
      return "verifier.pair_micros";
    case Hist::kSolveMicros:
      return "smt.solve_micros";
    case Hist::kSolverNodesPerQuery:
      return "smt.solver_nodes_per_query";
    case Hist::kSolverAssignmentsPerQuery:
      return "smt.solver_assignments_per_query";
    case Hist::kGroundExpansionsPerQuery:
      return "smt.ground_expansions_per_query";
    case Hist::kLeaseAcquireMicros:
      return "sim.lease_acquire_micros";
    case Hist::kServiceRequestMicros:
      return "service.request_micros";
    case Hist::kNumHists:
      break;
  }
  return "?";
}

// ---------------------------------------------------------------------------------------
// Recording entry points

bool Enabled() { return Reg().enabled.load(std::memory_order_acquire); }

bool Active() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  return reg.active;
}

uint64_t LiveCounter(Counter c) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return 0;
  }
  return reg.counters[static_cast<size_t>(c)].load(std::memory_order_relaxed);
}

HistSummary LiveHistogram(Hist h) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return HistSummary{};
  }
  return SummarizeHist(reg.hists[static_cast<size_t>(h)]);
}

void Add(Counter c, uint64_t delta) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  reg.counters[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
}

size_t HistBucketFor(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

uint64_t HistBucketLowerBound(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

void Observe(Hist h, uint64_t value) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  HistState& hs = reg.hists[static_cast<size_t>(h)];
  hs.buckets[HistBucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  hs.count.fetch_add(1, std::memory_order_relaxed);
  hs.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(hs.min, value);
  AtomicMax(hs.max, value);
}

// ---------------------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(const char* name, const char* category) {
  if (!Enabled()) {
    return;
  }
  name_ = name;
  Start(category);
}

ScopedSpan::ScopedSpan(std::string name, const char* category) {
  if (!Enabled() || name.empty()) {
    return;
  }
  name_ = std::move(name);
  Start(category);
}

void ScopedSpan::Start(const char* category) {
  category_ = category;
  start_us_ = NowMicros();
  active_ = true;
}

void ScopedSpan::Arg(const char* key, uint64_t value) {
  if (!active_ || num_args_ >= kMaxSpanArgs) {
    return;
  }
  args_[num_args_++] = {key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_ || !Enabled()) {
    return;  // collection stopped while the span was open: drop it
  }
  ThreadBuffer* buf = CurrentBuffer();
  if (buf == nullptr) {
    return;
  }
  int64_t end_us = NowMicros();
  std::lock_guard<std::mutex> lk(buf->mu);
  buf->spans.push_back(RawSpan{});
  RawSpan& s = buf->spans.back();
  s.name = std::move(name_);
  s.cat = category_;
  s.ts_us = start_us_ - Reg().epoch_us.load(std::memory_order_relaxed);
  s.dur_us = end_us - start_us_;
  s.num_args = num_args_;
  for (size_t i = 0; i < num_args_; ++i) {
    s.args[i] = args_[i];
  }
}

// ---------------------------------------------------------------------------------------
// Collector

Collector::Collector(ObsOptions options) : options_(std::move(options)) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  NOCTUA_CHECK_MSG(!reg.active,
                   "a noctua::obs::Collector is already installed — one recording "
                   "session at a time");
  reg.active = true;
  reg.buffers.clear();
  reg.next_tid = 1;
  for (auto& c : reg.counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& h : reg.hists) {
    for (auto& b : h.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    h.min.store(UINT64_MAX, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
  }
  reg.epoch_us.store(NowMicros(), std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_release);
  reg.enabled.store(true, std::memory_order_release);
}

Collector::~Collector() {
  Stop();
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.active = false;
  reg.buffers.clear();
}

void Collector::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  Registry& reg = Reg();
  reg.enabled.store(false, std::memory_order_release);

  std::lock_guard<std::mutex> lk(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    for (RawSpan& s : buf->spans) {
      TraceEvent ev;
      ev.name = std::move(s.name);
      ev.category = s.cat;
      ev.ts_us = s.ts_us;
      ev.dur_us = s.dur_us;
      ev.tid = buf->tid;
      ev.args.assign(s.args, s.args + s.num_args);
      events_.push_back(std::move(ev));
    }
    buf->spans.clear();
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });

  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    counters_[i] = reg.counters[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    hists_[i] = SummarizeHist(reg.hists[i]);
  }
}

const std::vector<TraceEvent>& Collector::events() const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::events() before Stop()");
  return events_;
}

uint64_t Collector::counter(Counter c) const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::counter() before Stop()");
  return counters_[static_cast<size_t>(c)];
}

HistSummary Collector::histogram(Hist h) const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::histogram() before Stop()");
  return hists_[static_cast<size_t>(h)];
}

std::set<std::string> Collector::SpanCategories() const {
  std::set<std::string> cats;
  for (const TraceEvent& ev : events()) {
    cats.insert(ev.category);
  }
  return cats;
}

// ---------------------------------------------------------------------------------------
// Export

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Collector::ChromeTraceJson() const {
  const std::vector<TraceEvent>& evs = events();
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  std::set<int> tids;
  for (const TraceEvent& ev : evs) {
    tids.insert(ev.tid);
    if (!first) {
      json += ",\n ";
    }
    first = false;
    json += "{\"name\": \"" + JsonEscape(ev.name) + "\", \"cat\": \"" +
            JsonEscape(ev.category) + "\", \"ph\": \"X\", \"ts\": " +
            std::to_string(ev.ts_us) + ", \"dur\": " + std::to_string(ev.dur_us) +
            ", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
    if (!ev.args.empty()) {
      json += ", \"args\": {";
      for (size_t i = 0; i < ev.args.size(); ++i) {
        json += std::string(i ? ", " : "") + "\"" + JsonEscape(ev.args[i].first) +
                "\": " + std::to_string(ev.args[i].second);
      }
      json += "}";
    }
    json += "}";
  }
  // Thread-name metadata so Perfetto labels the rows.
  for (int tid : tids) {
    if (!first) {
      json += ",\n ";
    }
    first = false;
    json += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
            std::to_string(tid) + ", \"args\": {\"name\": \"" +
            (tid == 1 ? std::string("main") : "worker-" + std::to_string(tid)) + "\"}}";
  }
  json += "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"counters\": {";
  first = true;
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    if (counters_[i] == 0) {
      continue;
    }
    if (!first) {
      json += ", ";
    }
    first = false;
    json += "\"" + std::string(CounterName(static_cast<Counter>(i))) +
            "\": " + std::to_string(counters_[i]);
  }
  json += "}}}";
  return json;
}

bool Collector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << ChromeTraceJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace noctua::obs
