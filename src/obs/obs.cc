#include "src/obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "src/support/check.h"

namespace noctua::obs {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// One finished span as recorded by its owning thread. Fixed-size args keep the append
// allocation-free except for the name string.
struct RawSpan {
  std::string name;
  const char* cat = nullptr;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint64_t trace = 0;
  size_t num_args = 0;
  std::pair<const char*, uint64_t> args[ScopedSpan::kMaxSpanArgs];
};

// Per-thread span sink. The owning thread appends under `mu`; the only other locker is
// the end-of-run snapshot, so the lock is uncontended while recording (this is what
// keeps concurrent workers from serializing on a shared buffer).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<RawSpan> spans;
  int tid = 0;
};

struct HistState {
  std::atomic<uint64_t> buckets[kHistBuckets];
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> min{UINT64_MAX};
  std::atomic<uint64_t> max{0};
  // The first kHistReservoir samples verbatim (slot = pre-increment count), for exact
  // small-count percentiles. A live read may catch a slot whose value store is still in
  // flight (reads 0, clamped to min by the summary) — exact once recording quiesces.
  std::atomic<uint64_t> reservoir[kHistReservoir];
};

// One labeled row's state, guarded by Registry::label_mu — labeled probes fire at
// per-request rate, so a mutex (and plain fields) beats per-row atomics here.
struct LabeledHistState {
  uint64_t buckets[kHistBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;
  uint64_t max = 0;
  std::vector<uint64_t> reservoir;  // first kHistReservoir samples
};

using LabelTuple = std::tuple<std::string, std::string, std::string>;  // tenant, app, mode

struct Registry {
  std::atomic<bool> enabled{false};
  // Bumped on every install so a thread's cached buffer from a previous run is never
  // written into the current one.
  std::atomic<uint64_t> generation{0};
  std::atomic<int64_t> epoch_us{0};

  std::mutex mu;  // guards buffers, next_tid, active
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
  bool active = false;  // a Collector object is installed (recording or stopped)

  std::atomic<uint64_t> counters[static_cast<size_t>(Counter::kNumCounters)];
  HistState hists[static_cast<size_t>(Hist::kNumHists)];

  // Labeled rows, keyed by (metric index, label tuple). Guarded by label_mu; reset at
  // collector install like everything else. label_tuples enforces the cardinality cap.
  std::mutex label_mu;
  std::map<std::pair<uint8_t, LabelTuple>, uint64_t> labeled_counters;
  std::map<std::pair<uint8_t, LabelTuple>, LabeledHistState> labeled_hists;
  std::set<LabelTuple> label_tuples;
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: recording may outlive static dtors
  return *r;
}

struct TlsSlot {
  std::shared_ptr<ThreadBuffer> buf;
  uint64_t gen = 0;
};

thread_local TlsSlot tls_slot;

// The calling thread's buffer for the current recording generation, registering it on
// first use; nullptr when collection raced off.
ThreadBuffer* CurrentBuffer() {
  Registry& reg = Reg();
  uint64_t gen = reg.generation.load(std::memory_order_acquire);
  if (tls_slot.gen != gen || tls_slot.buf == nullptr) {
    std::lock_guard<std::mutex> lk(reg.mu);
    if (!reg.enabled.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    tls_slot.buf = std::make_shared<ThreadBuffer>();
    tls_slot.buf->tid = reg.next_tid++;
    reg.buffers.push_back(tls_slot.buf);
    tls_slot.gen = gen;
  }
  return tls_slot.buf.get();
}

void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Percentile summary over one histogram snapshot. Exact (sorted reservoir,
// nearest-rank) while every sample is still in the reservoir; past that, linear
// interpolation inside the bucket holding the rank, clamped to the observed [min, max]
// — so a single-valued histogram stays exact at any count, and a p99 never snaps to a
// power-of-two bucket edge. Shared by the atomic (process-wide) and mutex-guarded
// (labeled) histogram states.
HistSummary SummarizeCounts(const uint64_t counts[kHistBuckets], uint64_t count,
                            uint64_t sum, uint64_t min, uint64_t max,
                            std::vector<uint64_t> reservoir) {
  HistSummary out;
  out.count = count;
  out.sum = sum;
  out.min = count == 0 ? 0 : min;
  out.max = max;
  if (count == 0) {
    return out;
  }
  auto rank_of = [&](double q) -> uint64_t {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    return std::clamp<uint64_t>(rank, 1, count);
  };
  if (count <= reservoir.size()) {
    std::sort(reservoir.begin(), reservoir.begin() + static_cast<ptrdiff_t>(count));
    auto exact = [&](double q) { return reservoir[rank_of(q) - 1]; };
    out.p50 = exact(0.50);
    out.p95 = exact(0.95);
    out.p99 = exact(0.99);
    return out;
  }
  auto percentile = [&](double q) -> uint64_t {
    uint64_t rank = rank_of(q);
    uint64_t seen = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (seen + counts[b] >= rank && counts[b] > 0) {
        uint64_t lo = HistBucketLowerBound(b);
        // Inclusive upper value of bucket b; the top bucket's nominal bound would
        // overflow, so it (like every bucket) is capped at the observed max below.
        uint64_t hi = b == 0 ? 0 : (b >= 64 ? max : lo * 2 - 1);
        double frac =
            static_cast<double>(rank - seen) / static_cast<double>(counts[b]);
        uint64_t v = lo + static_cast<uint64_t>(static_cast<double>(hi - lo) * frac);
        return std::clamp(v, out.min, out.max);
      }
      seen += counts[b];
    }
    return out.max;
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  out.p99 = percentile(0.99);
  return out;
}

// Snapshot + summary of one histogram's live atomics. Shared by the end-of-run
// Collector::Stop path and the mid-recording LiveHistogram path.
HistSummary SummarizeHist(const HistState& hs) {
  uint64_t counts[kHistBuckets];
  for (size_t b = 0; b < kHistBuckets; ++b) {
    counts[b] = hs.buckets[b].load(std::memory_order_relaxed);
  }
  uint64_t count = hs.count.load(std::memory_order_relaxed);
  std::vector<uint64_t> reservoir(std::min<uint64_t>(count, kHistReservoir));
  for (size_t i = 0; i < reservoir.size(); ++i) {
    reservoir[i] = hs.reservoir[i].load(std::memory_order_relaxed);
  }
  return SummarizeCounts(counts, count, hs.sum.load(std::memory_order_relaxed),
                         hs.min.load(std::memory_order_relaxed),
                         hs.max.load(std::memory_order_relaxed), std::move(reservoir));
}

// The calling thread's request-scoped trace context ({0, nullptr} outside a request).
thread_local TraceContext tls_trace;

}  // namespace

// ---------------------------------------------------------------------------------------
// Names

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kPairsChecked:
      return "verifier.pairs_checked";
    case Counter::kPairsPrefiltered:
      return "verifier.pairs_prefiltered";
    case Counter::kSolverChecks:
      return "verifier.solver_checks";
    case Counter::kCacheHits:
      return "verifier.cache_hits";
    case Counter::kCacheMisses:
      return "verifier.cache_misses";
    case Counter::kCacheReplayed:
      return "verifier.cache_replayed";
    case Counter::kCacheEvictions:
      return "verifier.cache_evictions";
    case Counter::kPoolSteals:
      return "pool.steals";
    case Counter::kPoolTasks:
      return "pool.tasks";
    case Counter::kSolverNodes:
      return "smt.solver_nodes";
    case Counter::kSolverAssignments:
      return "smt.solver_assignments";
    case Counter::kGroundExpansions:
      return "smt.ground_expansions";
    case Counter::kSimplifyHits:
      return "smt.simplify_hits";
    case Counter::kCdclConflicts:
      return "smt.cdcl_conflicts";
    case Counter::kCdclLearnedClauses:
      return "smt.cdcl_learned_clauses";
    case Counter::kSolverIncrementalReuse:
      return "solver.incremental_reuse_hits";
    case Counter::kSolverSymmetryPruned:
      return "solver.symmetry_pruned_nodes";
    case Counter::kCdclRestarts:
      return "cdcl.restarts";
    case Counter::kCdclClausesForgotten:
      return "cdcl.clauses_forgotten";
    case Counter::kPortfolioRaces:
      return "smt.portfolio_races";
    case Counter::kPortfolioWinsDfs:
      return "smt.portfolio_wins_dfs";
    case Counter::kPortfolioWinsCdcl:
      return "smt.portfolio_wins_cdcl";
    case Counter::kPortfolioUndecided:
      return "smt.portfolio_undecided";
    case Counter::kEndpointsAnalyzed:
      return "analyzer.endpoints_analyzed";
    case Counter::kEndpointsMemoized:
      return "analyzer.endpoints_memoized";
    case Counter::kPairsReplayed:
      return "incremental.pairs_replayed";
    case Counter::kPairsComputed:
      return "incremental.pairs_computed";
    case Counter::kParanoiaRechecks:
      return "incremental.paranoia_rechecks";
    case Counter::kArtifactLoads:
      return "incremental.artifact_loads";
    case Counter::kArtifactLoadFailures:
      return "incremental.artifact_load_failures";
    case Counter::kArtifactSaves:
      return "incremental.artifact_saves";
    case Counter::kArtifactSaveFailures:
      return "incremental.artifact_save_failures";
    case Counter::kSimRequestsCompleted:
      return "sim.requests_completed";
    case Counter::kSimMessagesSent:
      return "sim.messages_sent";
    case Counter::kSimMessagesDropped:
      return "sim.messages_dropped";
    case Counter::kSimRetransmissions:
      return "sim.retransmissions";
    case Counter::kSimDuplicatesIgnored:
      return "sim.duplicates_ignored";
    case Counter::kSimEffectsReplayed:
      return "sim.effects_replayed";
    case Counter::kSimReplicaCrashes:
      return "sim.replica_crashes";
    case Counter::kSimReplicaRecoveries:
      return "sim.replica_recoveries";
    case Counter::kSimConflictViolations:
      return "sim.conflict_violations";
    case Counter::kSimLeaseAcquires:
      return "sim.lease_acquires";
    case Counter::kSimLeaseExpiries:
      return "sim.lease_expiries";
    case Counter::kSimFencingRejections:
      return "sim.fencing_rejections";
    case Counter::kSimDegradations:
      return "sim.degradations";
    case Counter::kSimFenceHeldEffects:
      return "sim.fence_held_effects";
    case Counter::kServiceRequests:
      return "service.requests";
    case Counter::kServiceRequestsOk:
      return "service.requests_ok";
    case Counter::kServiceRequestsFailed:
      return "service.requests_failed";
    case Counter::kServiceRejected:
      return "service.rejected";
    case Counter::kServiceVerdicts:
      return "service.verdicts";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

const char* HistName(Hist h) {
  switch (h) {
    case Hist::kPairMicros:
      return "verifier.pair_micros";
    case Hist::kSolveMicros:
      return "smt.solve_micros";
    case Hist::kSolverNodesPerQuery:
      return "smt.solver_nodes_per_query";
    case Hist::kSolverAssignmentsPerQuery:
      return "smt.solver_assignments_per_query";
    case Hist::kGroundExpansionsPerQuery:
      return "smt.ground_expansions_per_query";
    case Hist::kLeaseAcquireMicros:
      return "sim.lease_acquire_micros";
    case Hist::kServiceRequestMicros:
      return "service.request_micros";
    case Hist::kServiceQueueWaitMicros:
      return "service.queue_wait_micros";
    case Hist::kServiceHandleMicros:
      return "service.handle_micros";
    case Hist::kNumHists:
      break;
  }
  return "?";
}

// ---------------------------------------------------------------------------------------
// Recording entry points

bool Enabled() { return Reg().enabled.load(std::memory_order_acquire); }

bool Active() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  return reg.active;
}

uint64_t LiveCounter(Counter c) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return 0;
  }
  return reg.counters[static_cast<size_t>(c)].load(std::memory_order_relaxed);
}

HistSummary LiveHistogram(Hist h) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return HistSummary{};
  }
  return SummarizeHist(reg.hists[static_cast<size_t>(h)]);
}

HistBucketCounts LiveHistogramBuckets(Hist h) {
  HistBucketCounts out{};
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return out;
  }
  const HistState& hs = reg.hists[static_cast<size_t>(h)];
  for (size_t b = 0; b < kHistBuckets; ++b) {
    out.buckets[b] = hs.buckets[b].load(std::memory_order_relaxed);
  }
  out.count = hs.count.load(std::memory_order_relaxed);
  out.sum = hs.sum.load(std::memory_order_relaxed);
  return out;
}

void Add(Counter c, uint64_t delta) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  reg.counters[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
}

size_t HistBucketFor(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

uint64_t HistBucketLowerBound(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

void Observe(Hist h, uint64_t value) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  HistState& hs = reg.hists[static_cast<size_t>(h)];
  hs.buckets[HistBucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t n = hs.count.fetch_add(1, std::memory_order_relaxed);
  if (n < kHistReservoir) {
    hs.reservoir[n].store(value, std::memory_order_relaxed);
  }
  hs.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(hs.min, value);
  AtomicMax(hs.max, value);
}

// ---------------------------------------------------------------------------------------
// Labeled metrics

namespace {

// Resolves a label set to its stored tuple under the cardinality cap: a tuple beyond
// the first kMaxLabelSets distinct ones folds its tenant/app into kLabelOverflow so an
// adversarial tenant-name stream cannot grow the registry without bound. The mode
// dimension survives the fold — it is a closed set chosen by the code, not the caller.
// Caller holds reg.label_mu.
LabelTuple ResolveLabels(Registry& reg, const MetricLabels& labels) {
  LabelTuple tuple{labels.tenant, labels.app, labels.mode};
  auto it = reg.label_tuples.find(tuple);
  if (it != reg.label_tuples.end()) {
    return tuple;
  }
  if (reg.label_tuples.size() >= kMaxLabelSets) {
    tuple = LabelTuple{kLabelOverflow, kLabelOverflow, labels.mode};
  }
  reg.label_tuples.insert(tuple);
  return tuple;
}

}  // namespace

void AddLabeled(Counter c, const MetricLabels& labels, uint64_t delta) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed) || delta == 0) {
    return;
  }
  std::lock_guard<std::mutex> lk(reg.label_mu);
  LabelTuple tuple = ResolveLabels(reg, labels);
  reg.labeled_counters[{static_cast<uint8_t>(c), std::move(tuple)}] += delta;
}

void ObserveLabeled(Hist h, const MetricLabels& labels, uint64_t value) {
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lk(reg.label_mu);
  LabelTuple tuple = ResolveLabels(reg, labels);
  LabeledHistState& hs = reg.labeled_hists[{static_cast<uint8_t>(h), std::move(tuple)}];
  hs.buckets[HistBucketFor(value)] += 1;
  if (hs.count < kHistReservoir) {
    hs.reservoir.push_back(value);
  }
  hs.count += 1;
  hs.sum += value;
  hs.min = std::min(hs.min, value);
  hs.max = std::max(hs.max, value);
}

std::vector<LabeledCounterRow> LiveLabeledCounters() {
  std::vector<LabeledCounterRow> out;
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return out;
  }
  std::lock_guard<std::mutex> lk(reg.label_mu);
  out.reserve(reg.labeled_counters.size());
  for (const auto& [key, value] : reg.labeled_counters) {
    LabeledCounterRow row;
    row.labels = MetricLabels{std::get<0>(key.second), std::get<1>(key.second),
                              std::get<2>(key.second)};
    row.counter = static_cast<Counter>(key.first);
    row.value = value;
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<LabeledHistRow> LiveLabeledHistograms() {
  std::vector<LabeledHistRow> out;
  Registry& reg = Reg();
  if (!reg.enabled.load(std::memory_order_relaxed)) {
    return out;
  }
  std::lock_guard<std::mutex> lk(reg.label_mu);
  out.reserve(reg.labeled_hists.size());
  for (const auto& [key, hs] : reg.labeled_hists) {
    LabeledHistRow row;
    row.labels = MetricLabels{std::get<0>(key.second), std::get<1>(key.second),
                              std::get<2>(key.second)};
    row.hist = static_cast<Hist>(key.first);
    row.summary =
        SummarizeCounts(hs.buckets, hs.count, hs.sum, hs.min, hs.max, hs.reservoir);
    for (size_t b = 0; b < kHistBuckets; ++b) {
      row.buckets.buckets[b] = hs.buckets[b];
    }
    row.buckets.count = hs.count;
    row.buckets.sum = hs.sum;
    out.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------------------
// Trace context

TraceContext CurrentTraceContext() { return tls_trace; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(tls_trace) {
  tls_trace = ctx;
}

ScopedTraceContext::ScopedTraceContext(uint64_t trace, TraceCapture* capture)
    : ScopedTraceContext(TraceContext{trace, capture}) {}

ScopedTraceContext::~ScopedTraceContext() { tls_trace = saved_; }

int64_t SteadyNowMicros() { return NowMicros(); }

void TraceCapture::Record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(ev);
}

std::vector<TraceEvent> TraceCapture::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::string TraceCapture::ChromeTraceJson(const std::string& trace_id) const {
  std::vector<TraceEvent> evs = Snapshot();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) {
      json += ",\n ";
    }
    first = false;
    json += "{\"name\": \"" + JsonEscape(ev.name) + "\", \"cat\": \"" +
            JsonEscape(ev.category) + "\", \"ph\": \"X\", \"ts\": " +
            std::to_string(ev.ts_us) + ", \"dur\": " + std::to_string(ev.dur_us) +
            ", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
    json += ", \"args\": {\"trace_id\": \"" + JsonEscape(trace_id) + "\"";
    for (const auto& [key, value] : ev.args) {
      json += ", \"" + JsonEscape(key) + "\": " + std::to_string(value);
    }
    json += "}}";
  }
  json += "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_id\": \"" +
          JsonEscape(trace_id) + "\"}}";
  return json;
}

void RecordSpan(const char* name, const char* category, int64_t start_us,
                int64_t end_us) {
  if (!Enabled()) {
    return;
  }
  ThreadBuffer* buf = CurrentBuffer();
  if (buf == nullptr) {
    return;
  }
  const TraceContext ctx = tls_trace;
  int64_t ts = start_us - Reg().epoch_us.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->spans.push_back(RawSpan{});
    RawSpan& s = buf->spans.back();
    s.name = name;
    s.cat = category;
    s.ts_us = ts;
    s.dur_us = end_us - start_us;
    s.trace = ctx.trace;
  }
  if (ctx.capture != nullptr) {
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.ts_us = ts;
    ev.dur_us = end_us - start_us;
    ev.tid = buf->tid;
    ev.trace = ctx.trace;
    ctx.capture->Record(ev);
  }
}

// ---------------------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(const char* name, const char* category) {
  if (!Enabled()) {
    return;
  }
  name_ = name;
  Start(category);
}

ScopedSpan::ScopedSpan(std::string name, const char* category) {
  if (!Enabled() || name.empty()) {
    return;
  }
  name_ = std::move(name);
  Start(category);
}

void ScopedSpan::Start(const char* category) {
  category_ = category;
  start_us_ = NowMicros();
  active_ = true;
}

void ScopedSpan::Arg(const char* key, uint64_t value) {
  if (!active_ || num_args_ >= kMaxSpanArgs) {
    return;
  }
  args_[num_args_++] = {key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_ || !Enabled()) {
    return;  // collection stopped while the span was open: drop it
  }
  ThreadBuffer* buf = CurrentBuffer();
  if (buf == nullptr) {
    return;
  }
  int64_t end_us = NowMicros();
  const TraceContext ctx = tls_trace;
  int64_t ts = start_us_ - Reg().epoch_us.load(std::memory_order_relaxed);
  if (ctx.capture != nullptr) {
    // Feed the request-scoped capture before the name is moved into the raw span.
    TraceEvent ev;
    ev.name = name_;
    ev.category = category_;
    ev.ts_us = ts;
    ev.dur_us = end_us - start_us_;
    ev.tid = buf->tid;
    ev.trace = ctx.trace;
    ev.args.assign(args_, args_ + num_args_);
    ctx.capture->Record(ev);
  }
  std::lock_guard<std::mutex> lk(buf->mu);
  buf->spans.push_back(RawSpan{});
  RawSpan& s = buf->spans.back();
  s.name = std::move(name_);
  s.cat = category_;
  s.ts_us = ts;
  s.dur_us = end_us - start_us_;
  s.trace = ctx.trace;
  s.num_args = num_args_;
  for (size_t i = 0; i < num_args_; ++i) {
    s.args[i] = args_[i];
  }
}

// ---------------------------------------------------------------------------------------
// Collector

Collector::Collector(ObsOptions options) : options_(std::move(options)) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  NOCTUA_CHECK_MSG(!reg.active,
                   "a noctua::obs::Collector is already installed — one recording "
                   "session at a time");
  reg.active = true;
  reg.buffers.clear();
  reg.next_tid = 1;
  for (auto& c : reg.counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& h : reg.hists) {
    for (auto& b : h.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    h.min.store(UINT64_MAX, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> llk(reg.label_mu);
    reg.labeled_counters.clear();
    reg.labeled_hists.clear();
    reg.label_tuples.clear();
  }
  reg.epoch_us.store(NowMicros(), std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_release);
  reg.enabled.store(true, std::memory_order_release);
}

Collector::~Collector() {
  Stop();
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.active = false;
  reg.buffers.clear();
}

void Collector::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  Registry& reg = Reg();
  reg.enabled.store(false, std::memory_order_release);

  std::lock_guard<std::mutex> lk(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    for (RawSpan& s : buf->spans) {
      TraceEvent ev;
      ev.name = std::move(s.name);
      ev.category = s.cat;
      ev.ts_us = s.ts_us;
      ev.dur_us = s.dur_us;
      ev.tid = buf->tid;
      ev.trace = s.trace;
      ev.args.assign(s.args, s.args + s.num_args);
      events_.push_back(std::move(ev));
    }
    buf->spans.clear();
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });

  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    counters_[i] = reg.counters[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    hists_[i] = SummarizeHist(reg.hists[i]);
  }
}

const std::vector<TraceEvent>& Collector::events() const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::events() before Stop()");
  return events_;
}

uint64_t Collector::counter(Counter c) const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::counter() before Stop()");
  return counters_[static_cast<size_t>(c)];
}

HistSummary Collector::histogram(Hist h) const {
  NOCTUA_CHECK_MSG(stopped_, "Collector::histogram() before Stop()");
  return hists_[static_cast<size_t>(h)];
}

std::set<std::string> Collector::SpanCategories() const {
  std::set<std::string> cats;
  for (const TraceEvent& ev : events()) {
    cats.insert(ev.category);
  }
  return cats;
}

// ---------------------------------------------------------------------------------------
// Export

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Collector::ChromeTraceJson() const {
  const std::vector<TraceEvent>& evs = events();
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  std::set<int> tids;
  for (const TraceEvent& ev : evs) {
    tids.insert(ev.tid);
    if (!first) {
      json += ",\n ";
    }
    first = false;
    json += "{\"name\": \"" + JsonEscape(ev.name) + "\", \"cat\": \"" +
            JsonEscape(ev.category) + "\", \"ph\": \"X\", \"ts\": " +
            std::to_string(ev.ts_us) + ", \"dur\": " + std::to_string(ev.dur_us) +
            ", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
    if (!ev.args.empty() || ev.trace != 0) {
      json += ", \"args\": {";
      bool first_arg = true;
      if (ev.trace != 0) {
        json += "\"trace\": " + std::to_string(ev.trace);
        first_arg = false;
      }
      for (size_t i = 0; i < ev.args.size(); ++i) {
        json += std::string(first_arg ? "" : ", ") + "\"" + JsonEscape(ev.args[i].first) +
                "\": " + std::to_string(ev.args[i].second);
        first_arg = false;
      }
      json += "}";
    }
    json += "}";
  }
  // Thread-name metadata so Perfetto labels the rows.
  for (int tid : tids) {
    if (!first) {
      json += ",\n ";
    }
    first = false;
    json += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
            std::to_string(tid) + ", \"args\": {\"name\": \"" +
            (tid == 1 ? std::string("main") : "worker-" + std::to_string(tid)) + "\"}}";
  }
  json += "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"counters\": {";
  first = true;
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    if (counters_[i] == 0) {
      continue;
    }
    if (!first) {
      json += ", ";
    }
    first = false;
    json += "\"" + std::string(CounterName(static_cast<Counter>(i))) +
            "\": " + std::to_string(counters_[i]);
  }
  json += "}}}";
  return json;
}

bool Collector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << ChromeTraceJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace noctua::obs
