#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

namespace noctua::obs {

JsonPtr JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second;
}

JsonPtr JsonValue::MakeNull() { return std::make_shared<JsonValue>(); }

JsonPtr JsonValue::MakeBool(bool b) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kBool;
  v->bool_ = b;
  return v;
}

JsonPtr JsonValue::MakeNumber(double n) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kNumber;
  v->number_ = n;
  return v;
}

JsonPtr JsonValue::MakeString(std::string s) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kString;
  v->string_ = std::move(s);
  return v;
}

JsonPtr JsonValue::MakeArray(std::vector<JsonPtr> items) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kArray;
  v->array_ = std::move(items);
  return v;
}

JsonPtr JsonValue::MakeObject(std::map<std::string, JsonPtr> members) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kObject;
  v->object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  JsonPtr Parse() {
    JsonPtr v = ParseValue();
    if (v == nullptr) {
      return nullptr;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  JsonPtr Fail(const std::string& why) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "json parse error at offset " + std::to_string(pos_) + ": " + why;
    }
    return nullptr;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonPtr ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return nullptr;
        }
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        return ConsumeLiteral("true") ? JsonValue::MakeBool(true) : Fail("bad literal");
      case 'f':
        return ConsumeLiteral("false") ? JsonValue::MakeBool(false) : Fail("bad literal");
      case 'n':
        return ConsumeLiteral("null") ? JsonValue::MakeNull() : Fail("bad literal");
      default:
        return ParseNumber();
    }
  }

  JsonPtr ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonPtr> members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return nullptr;
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      JsonPtr value = ParseValue();
      if (value == nullptr) {
        return nullptr;
      }
      members[std::move(key)] = std::move(value);
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue::MakeObject(std::move(members));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  JsonPtr ParseArray() {
    ++pos_;  // '['
    std::vector<JsonPtr> items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      JsonPtr value = ParseValue();
      if (value == nullptr) {
        return nullptr;
      }
      items.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue::MakeArray(std::move(items));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
              return false;
            }
          }
          pos_ += 4;
          // UTF-8 encode (surrogate pairs not recombined; the exporter never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          Fail("bad escape character");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  JsonPtr ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digits after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digits");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return JsonValue::MakeNumber(std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr));
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

JsonPtr ParseJson(const std::string& text, std::string* error) {
  Parser p(text, error);
  return p.Parse();
}

}  // namespace noctua::obs
