// Minimal recursive-descent JSON parser producing an immutable DOM. Exists so the tests
// and the pipeline_sweep bench can validate the trace files this library *writes* by
// parsing them back — well-formedness, span categories, per-pair args — without an
// external JSON dependency. It accepts strict RFC 8259 JSON (which is all the exporter
// emits); it is not a general-purpose lenient parser.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace noctua::obs {

class JsonValue;
using JsonPtr = std::shared_ptr<const JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonPtr>& AsArray() const { return array_; }
  const std::map<std::string, JsonPtr>& AsObject() const { return object_; }

  // Object member lookup; nullptr when this is not an object or the key is absent.
  JsonPtr Get(const std::string& key) const;

  static JsonPtr MakeNull();
  static JsonPtr MakeBool(bool b);
  static JsonPtr MakeNumber(double n);
  static JsonPtr MakeString(std::string s);
  static JsonPtr MakeArray(std::vector<JsonPtr> items);
  static JsonPtr MakeObject(std::map<std::string, JsonPtr> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonPtr> array_;
  std::map<std::string, JsonPtr> object_;
};

// Parses `text` as one JSON document. Returns nullptr and sets `*error` (position and
// reason) on malformed input or trailing garbage.
JsonPtr ParseJson(const std::string& text, std::string* error);

}  // namespace noctua::obs

#endif  // SRC_OBS_JSON_H_
