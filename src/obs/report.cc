#include "src/obs/report.h"

#include <algorithm>
#include <cstring>

#include "src/support/strings.h"
#include "src/support/table.h"

namespace noctua::obs {

namespace {

std::string HistSummaryJson(const HistSummary& s) {
  return "{\"count\": " + std::to_string(s.count) + ", \"sum\": " + std::to_string(s.sum) +
         ", \"min\": " + std::to_string(s.min) + ", \"max\": " + std::to_string(s.max) +
         ", \"p50\": " + std::to_string(s.p50) + ", \"p95\": " + std::to_string(s.p95) +
         ", \"p99\": " + std::to_string(s.p99) + "}";
}

}  // namespace

RunReport BuildRunReport(const Collector& collector, const std::string& app,
                         double total_seconds, double analyze_seconds,
                         double verify_seconds) {
  RunReport r;
  r.app = app;
  r.total_seconds = total_seconds;
  r.analyze_seconds = analyze_seconds;
  r.verify_seconds = verify_seconds;
  r.pairs_checked = collector.counter(Counter::kPairsChecked);
  r.pairs_per_second =
      verify_seconds > 0.0 ? static_cast<double>(r.pairs_checked) / verify_seconds : 0.0;
  r.trace_events = collector.events().size();
  for (const std::string& cat : collector.SpanCategories()) {
    r.span_categories.push_back(cat);
  }
  for (size_t i = 0; i < static_cast<size_t>(Counter::kNumCounters); ++i) {
    Counter c = static_cast<Counter>(i);
    uint64_t v = collector.counter(c);
    if (v != 0) {
      r.counters.push_back(CounterRow{CounterName(c), v});
    }
  }
  for (size_t i = 0; i < static_cast<size_t>(Hist::kNumHists); ++i) {
    Hist h = static_cast<Hist>(i);
    HistSummary s = collector.histogram(h);
    if (s.count != 0) {
      r.histograms.push_back(HistRow{HistName(h), s});
    }
  }
  // Slowest pair-category spans, by duration.
  std::vector<const TraceEvent*> pairs;
  for (const TraceEvent& ev : collector.events()) {
    if (std::strcmp(ev.category, kCatPair) == 0) {
      pairs.push_back(&ev);
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(), [](const TraceEvent* a, const TraceEvent* b) {
    return a->dur_us > b->dur_us;
  });
  size_t top = std::min(pairs.size(), collector.options().top_slowest_pairs);
  for (size_t i = 0; i < top; ++i) {
    SlowPair sp;
    sp.name = pairs[i]->name;
    sp.micros = pairs[i]->dur_us;
    for (const auto& [key, value] : pairs[i]->args) {
      if (std::strcmp(key, "solver_nodes") == 0) {
        sp.solver_nodes = value;
      } else if (std::strcmp(key, "cache_hits") == 0) {
        sp.cache_hits = value;
      }
    }
    r.slow_pairs.push_back(std::move(sp));
  }
  return r;
}

std::string RunReport::ToJson() const {
  std::string json = "{\"app\": \"" + JsonEscape(app) + "\"";
  json += ", \"total_seconds\": " + FormatDouble(total_seconds, 6);
  json += ", \"analyze_seconds\": " + FormatDouble(analyze_seconds, 6);
  json += ", \"verify_seconds\": " + FormatDouble(verify_seconds, 6);
  json += ", \"pairs_checked\": " + std::to_string(pairs_checked);
  json += ", \"pairs_per_second\": " + FormatDouble(pairs_per_second, 2);
  json += ", \"trace_events\": " + std::to_string(trace_events);
  json += ", \"span_categories\": [";
  for (size_t i = 0; i < span_categories.size(); ++i) {
    json += std::string(i ? ", " : "") + "\"" + JsonEscape(span_categories[i]) + "\"";
  }
  json += "], \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    json += std::string(i ? ", " : "") + "\"" + JsonEscape(counters[i].name) +
            "\": " + std::to_string(counters[i].value);
  }
  json += "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    json += std::string(i ? ", " : "") + "\"" + JsonEscape(histograms[i].name) +
            "\": " + HistSummaryJson(histograms[i].summary);
  }
  json += "}, \"slow_pairs\": [";
  for (size_t i = 0; i < slow_pairs.size(); ++i) {
    const SlowPair& sp = slow_pairs[i];
    json += std::string(i ? ", " : "") + "{\"name\": \"" + JsonEscape(sp.name) +
            "\", \"micros\": " + std::to_string(sp.micros) +
            ", \"solver_nodes\": " + std::to_string(sp.solver_nodes) +
            ", \"cache_hits\": " + std::to_string(sp.cache_hits) + "}";
  }
  json += "]}";
  return json;
}

std::string RunReport::ToTable() const {
  std::string out;
  out += "== run report: " + app + " ==\n";
  out += "  total    " + FormatDouble(total_seconds, 3) + " s\n";
  out += "  analyze  " + FormatDouble(analyze_seconds, 3) + " s\n";
  out += "  verify   " + FormatDouble(verify_seconds, 3) + " s   (" +
         std::to_string(pairs_checked) + " pairs, " + FormatDouble(pairs_per_second, 1) +
         " pairs/s)\n";
  out += "  trace    " + std::to_string(trace_events) + " events, categories: " +
         Join(span_categories, ",") + "\n";

  if (!counters.empty()) {
    TextTable t({"counter", "value"});
    for (const CounterRow& c : counters) {
      t.AddRow({c.name, std::to_string(c.value)});
    }
    out += "\n" + t.Render();
  }
  if (!histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const HistRow& h : histograms) {
      const HistSummary& s = h.summary;
      t.AddRow({h.name, std::to_string(s.count), FormatDouble(s.Mean(), 1),
                std::to_string(s.p50), std::to_string(s.p95), std::to_string(s.p99),
                std::to_string(s.max)});
    }
    out += "\n" + t.Render();
  }
  if (!slow_pairs.empty()) {
    TextTable t({"slowest pair", "micros", "solver_nodes", "cache_hits"});
    for (const SlowPair& sp : slow_pairs) {
      t.AddRow({sp.name, std::to_string(sp.micros), std::to_string(sp.solver_nodes),
                std::to_string(sp.cache_hits)});
    }
    out += "\n" + t.Render();
  }
  return out;
}

}  // namespace noctua::obs
