// Structured, leveled JSON event logging for the service layer.
//
// One EventLog writes newline-delimited JSON objects ("json lines") to stderr or a
// file. Each line carries a wall-clock timestamp, the level, a short event name, and
// the caller's typed fields:
//
//   {"ts_ms": 1754649600123, "level": "info", "event": "request",
//    "trace_id": "ntr-7", "tenant": "alice", "status": 200, "queue_wait_us": 41, ...}
//
// Design points, in the spirit of the obs registry:
//   - Leveled and cheap when quiet: Enabled(level) is one relaxed atomic load, so a
//     debug-level probe in the request path costs nothing at the default level.
//   - Thread-safe: one mutex around the formatted write, so concurrent workers never
//     interleave bytes of a line. Formatting happens outside the lock.
//   - No global state: the server owns its EventLog and threads it where needed; tests
//     construct their own against a temp file.
//
// LogRateLimiter is a token bucket for logs that are per-event but must not flood —
// the slow-request log uses it so a latency incident produces a sample, not a self-
// inflicted log-volume incident.

#ifndef NOCTUA_SRC_OBS_LOG_H_
#define NOCTUA_SRC_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>

namespace noctua::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Lowercase level name as it appears on the wire ("debug" ... "error").
const char* LogLevelName(LogLevel level);

// Parses "debug" | "info" | "warn" | "error" (exact, lowercase). Returns false and
// leaves *out untouched on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

// One typed key/value field of a log line. Constructed implicitly at call sites:
//   log.Log(LogLevel::kInfo, "request", {{"tenant", tenant}, {"status", 200}});
// Strings are JSON-escaped at write time; numbers and bools are emitted bare.
struct LogField {
  enum class Kind { kString, kUint, kInt, kDouble, kBool };

  LogField(const char* k, const std::string& v) : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, const char* v) : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, uint64_t v) : key(k), kind(Kind::kUint), u64(v) {}
  LogField(const char* k, int64_t v) : key(k), kind(Kind::kInt), i64(v) {}
  LogField(const char* k, int v) : key(k), kind(Kind::kInt), i64(v) {}
  LogField(const char* k, double v) : key(k), kind(Kind::kDouble), f64(v) {}
  LogField(const char* k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  const char* key;
  Kind kind;
  std::string str;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool b = false;
};

class EventLog {
 public:
  // Logs to stderr at kWarn until configured.
  EventLog();
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Sets the level and sink. Empty path = stderr; otherwise the file is opened for
  // append (the access log of a long-lived daemon survives restarts). Returns false
  // with *error set if the file cannot be opened — the previous sink stays active.
  bool Configure(LogLevel level, const std::string& path, std::string* error);

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  // One relaxed load; gate expensive field computation on this.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_.load(std::memory_order_relaxed));
  }

  // Writes one line. No-op below the configured level.
  void Log(LogLevel level, const char* event, std::initializer_list<LogField> fields);

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mu_;        // serializes writes (and sink swaps) only
  std::FILE* file_ = nullptr;  // owned when non-null; stderr is used when null
};

// Token-bucket limiter: allows `burst` immediately, refills at `per_second`.
// Thread-safe. Time source is the steady clock.
class LogRateLimiter {
 public:
  LogRateLimiter(double per_second, double burst);

  // True if the caller may log now (consumes one token).
  bool Allow();

 private:
  const double per_second_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  int64_t last_us_;
};

}  // namespace noctua::obs

#endif  // NOCTUA_SRC_OBS_LOG_H_
