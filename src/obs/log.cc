#include "src/obs/log.h"

#include <algorithm>
#include <chrono>

#include "src/obs/obs.h"

namespace noctua::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

EventLog::EventLog() = default;

EventLog::~EventLog() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool EventLog::Configure(LogLevel level, const std::string& path, std::string* error) {
  std::FILE* file = nullptr;
  if (!path.empty()) {
    file = std::fopen(path.c_str(), "a");
    if (file == nullptr) {
      if (error != nullptr) {
        *error = "cannot open log file: " + path;
      }
      return false;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
  }
  file_ = file;
  level_.store(level, std::memory_order_relaxed);
  return true;
}

void EventLog::Log(LogLevel level, const char* event,
                   std::initializer_list<LogField> fields) {
  if (!Enabled(level)) {
    return;
  }
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::string line = "{\"ts_ms\": " + std::to_string(ts_ms) + ", \"level\": \"" +
                     LogLevelName(level) + "\", \"event\": \"" +
                     JsonEscape(event) + "\"";
  for (const LogField& f : fields) {
    line += ", \"" + JsonEscape(f.key) + "\": ";
    switch (f.kind) {
      case LogField::Kind::kString:
        line += "\"" + JsonEscape(f.str) + "\"";
        break;
      case LogField::Kind::kUint:
        line += std::to_string(f.u64);
        break;
      case LogField::Kind::kInt:
        line += std::to_string(f.i64);
        break;
      case LogField::Kind::kDouble:
        line += std::to_string(f.f64);
        break;
      case LogField::Kind::kBool:
        line += f.b ? "true" : "false";
        break;
    }
  }
  line += "}\n";
  std::lock_guard<std::mutex> lk(mu_);
  std::FILE* sink = file_ != nullptr ? file_ : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

LogRateLimiter::LogRateLimiter(double per_second, double burst)
    : per_second_(per_second),
      burst_(burst),
      tokens_(burst),
      last_us_(SteadyNowMicros()) {}

bool LogRateLimiter::Allow() {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t now_us = SteadyNowMicros();
  double elapsed_s = static_cast<double>(now_us - last_us_) / 1e6;
  last_us_ = now_us;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * per_second_);
  if (tokens_ < 1.0) {
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

}  // namespace noctua::obs
