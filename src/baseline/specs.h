// Baseline specifications for the Table 5 correctness comparison.
//
// Prior tools (Rigi for SmallBank, Hamsaz for Courseware) consume *specifications* —
// explicit operation descriptions — rather than extracting semantics from application
// code. This module hand-writes the SOIR for both benchmarks' operations, exactly as a
// spec author would, and feeds it to the same verifier. Table 5's claim is that Noctua's
// analyzer-extracted paths yield the same restriction set as these specs.
#ifndef SRC_BASELINE_SPECS_H_
#define SRC_BASELINE_SPECS_H_

#include <vector>

#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::baseline {

// Hand-written SOIR for SmallBank's four effectful operations, against `schema` (the
// schema from apps::MakeSmallBankApp()).
std::vector<soir::CodePath> SmallBankSpec(const soir::Schema& schema);

// Hand-written SOIR for Courseware's four operations.
std::vector<soir::CodePath> CoursewareSpec(const soir::Schema& schema);

}  // namespace noctua::baseline

#endif  // SRC_BASELINE_SPECS_H_
