#include "src/baseline/specs.h"

#include "src/support/check.h"

namespace noctua::baseline {

using soir::CmpOp;
using soir::CodePath;
using soir::Command;
using soir::CommandKind;
using soir::ExprP;
using soir::Type;

namespace {

Command Guard(ExprP cond) {
  Command c;
  c.kind = CommandKind::kGuard;
  c.a = std::move(cond);
  return c;
}

Command Update(ExprP set) {
  Command c;
  c.kind = CommandKind::kUpdate;
  c.a = std::move(set);
  return c;
}

Command Delete(ExprP set) {
  Command c;
  c.kind = CommandKind::kDelete;
  c.a = std::move(set);
  return c;
}

Command Link(int relation, ExprP from, ExprP to) {
  Command c;
  c.kind = CommandKind::kLink;
  c.relation = relation;
  c.a = std::move(from);
  c.b = std::move(to);
  return c;
}

// guard(exists(filter(pk == ref, all<m>)))
Command ExistsGuard(const soir::Schema& s, int m, ExprP ref) {
  ExprP matched =
      soir::MakeFilter(soir::MakeAll(m), {}, s.model(m).pk_name(), CmpOp::kEq, std::move(ref));
  return Guard(soir::MakeExists(matched));
}

}  // namespace

std::vector<CodePath> SmallBankSpec(const soir::Schema& s) {
  int account = s.ModelId("Account");
  auto acct_obj = [&](ExprP ref) { return soir::MakeDeref(ref); };
  auto field = [&](ExprP obj, const char* name) {
    return soir::MakeGetField(std::move(obj), name, Type::Int());
  };
  std::vector<CodePath> out;

  {  // DepositChecking(acct, amount): amount >= 0; checking += amount.
    CodePath p;
    p.op_name = "DepositChecking";
    p.view_name = "DepositChecking";
    ExprP acct = soir::MakeArg("acct", Type::Ref(account));
    ExprP amount = soir::MakeArg("amount", Type::Int());
    p.args = {{"acct", Type::Ref(account), false}, {"amount", Type::Int(), false}};
    p.commands.push_back(ExistsGuard(s, account, acct));
    p.commands.push_back(Guard(soir::MakeCmp(CmpOp::kGe, amount, soir::MakeIntLit(0))));
    ExprP obj = acct_obj(acct);
    ExprP updated = soir::MakeSetField(obj, "checking",
                                       soir::MakeAdd(field(obj, "checking"), amount));
    p.commands.push_back(Update(soir::MakeSingleton(updated)));
    out.push_back(std::move(p));
  }
  {  // TransactSavings(acct, amount): savings + amount >= 0; savings += amount.
    CodePath p;
    p.op_name = "TransactSavings";
    p.view_name = "TransactSavings";
    ExprP acct = soir::MakeArg("acct", Type::Ref(account));
    ExprP amount = soir::MakeArg("amount", Type::Int());
    p.args = {{"acct", Type::Ref(account), false}, {"amount", Type::Int(), false}};
    p.commands.push_back(ExistsGuard(s, account, acct));
    ExprP obj = acct_obj(acct);
    p.commands.push_back(Guard(soir::MakeCmp(
        CmpOp::kGe, soir::MakeAdd(field(obj, "savings"), amount), soir::MakeIntLit(0))));
    ExprP updated = soir::MakeSetField(obj, "savings",
                                       soir::MakeAdd(field(obj, "savings"), amount));
    p.commands.push_back(Update(soir::MakeSingleton(updated)));
    out.push_back(std::move(p));
  }
  {  // SendPayment(src, dst, amount): 0 <= amount <= src.checking; transfer.
    CodePath p;
    p.op_name = "SendPayment";
    p.view_name = "SendPayment";
    ExprP src = soir::MakeArg("src", Type::Ref(account));
    ExprP dst = soir::MakeArg("dst", Type::Ref(account));
    ExprP amount = soir::MakeArg("amount", Type::Int());
    p.args = {{"src", Type::Ref(account), false},
              {"dst", Type::Ref(account), false},
              {"amount", Type::Int(), false}};
    p.commands.push_back(ExistsGuard(s, account, src));
    p.commands.push_back(ExistsGuard(s, account, dst));
    p.commands.push_back(Guard(soir::MakeCmp(CmpOp::kGe, amount, soir::MakeIntLit(0))));
    ExprP sobj = acct_obj(src);
    ExprP dobj = acct_obj(dst);
    p.commands.push_back(Guard(soir::MakeCmp(CmpOp::kGe, field(sobj, "checking"), amount)));
    p.commands.push_back(Update(soir::MakeSingleton(soir::MakeSetField(
        sobj, "checking", soir::MakeSub(field(sobj, "checking"), amount)))));
    p.commands.push_back(Update(soir::MakeSingleton(soir::MakeSetField(
        dobj, "checking", soir::MakeAdd(field(dobj, "checking"), amount)))));
    out.push_back(std::move(p));
  }
  {  // Amalgamate(src, dst, amount): moves the origin-read balance, like SendPayment.
    CodePath p;
    p.op_name = "Amalgamate";
    p.view_name = "Amalgamate";
    ExprP src = soir::MakeArg("src", Type::Ref(account));
    ExprP dst = soir::MakeArg("dst", Type::Ref(account));
    ExprP amount = soir::MakeArg("amount", Type::Int());
    p.args = {{"src", Type::Ref(account), false},
              {"dst", Type::Ref(account), false},
              {"amount", Type::Int(), false}};
    p.commands.push_back(ExistsGuard(s, account, src));
    p.commands.push_back(ExistsGuard(s, account, dst));
    p.commands.push_back(Guard(soir::MakeCmp(CmpOp::kGe, amount, soir::MakeIntLit(0))));
    ExprP sobj = acct_obj(src);
    ExprP dobj = acct_obj(dst);
    p.commands.push_back(Guard(soir::MakeCmp(CmpOp::kGe, field(sobj, "checking"), amount)));
    p.commands.push_back(Update(soir::MakeSingleton(soir::MakeSetField(
        sobj, "checking", soir::MakeSub(field(sobj, "checking"), amount)))));
    p.commands.push_back(Update(soir::MakeSingleton(soir::MakeSetField(
        dobj, "checking", soir::MakeAdd(field(dobj, "checking"), amount)))));
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<CodePath> CoursewareSpec(const soir::Schema& s) {
  int student = s.ModelId("Student");
  int course = s.ModelId("Course");
  int enrolment = s.ModelId("Enrolment");
  auto [rel_student, fwd1] = s.FindRelation(enrolment, "student");
  auto [rel_course, fwd2] = s.FindRelation(enrolment, "course");
  NOCTUA_CHECK(rel_student >= 0 && rel_course >= 0 && fwd1 && fwd2);

  std::vector<CodePath> out;
  auto insert_new = [&](CodePath& p, int model, const char* arg_name,
                        std::vector<ExprP> fields) {
    ExprP new_id = soir::MakeArg(arg_name, Type::Ref(model));
    p.args.push_back({arg_name, Type::Ref(model), /*unique_id=*/true});
    ExprP dup = soir::MakeFilter(soir::MakeAll(model), {}, s.model(model).pk_name(),
                                 CmpOp::kEq, new_id);
    p.commands.push_back(Guard(soir::MakeNot(soir::MakeExists(dup))));
    ExprP obj = soir::MakeNewObj(model, new_id, std::move(fields));
    p.commands.push_back(Update(soir::MakeSingleton(obj)));
    return obj;
  };

  {  // Register(name)
    CodePath p;
    p.op_name = "Register";
    p.view_name = "Register";
    ExprP name = soir::MakeArg("name", Type::String());
    p.args.push_back({"name", Type::String(), false});
    insert_new(p, student, "new_student", {name});
    out.push_back(std::move(p));
  }
  {  // AddCourse(title, capacity)
    CodePath p;
    p.op_name = "AddCourse";
    p.view_name = "AddCourse";
    ExprP title = soir::MakeArg("title", Type::String());
    ExprP cap = soir::MakeArg("capacity", Type::Int());
    p.args.push_back({"title", Type::String(), false});
    p.args.push_back({"capacity", Type::Int(), false});
    insert_new(p, course, "new_course", {title, cap});
    out.push_back(std::move(p));
  }
  {  // Enroll(student, course)
    CodePath p;
    p.op_name = "Enroll";
    p.view_name = "Enroll";
    ExprP st = soir::MakeArg("student", Type::Ref(student));
    ExprP co = soir::MakeArg("course", Type::Ref(course));
    p.args.push_back({"student", Type::Ref(student), false});
    p.args.push_back({"course", Type::Ref(course), false});
    p.commands.push_back(ExistsGuard(s, student, st));
    p.commands.push_back(ExistsGuard(s, course, co));
    ExprP obj = insert_new(p, enrolment, "new_enrolment", {});
    p.commands.push_back(Link(rel_student, obj, soir::MakeDeref(st)));
    p.commands.push_back(Link(rel_course, obj, soir::MakeDeref(co)));
    out.push_back(std::move(p));
  }
  {  // DeleteCourse(course): filter semantics, no existence requirement.
    CodePath p;
    p.op_name = "DeleteCourse";
    p.view_name = "DeleteCourse";
    ExprP co = soir::MakeArg("course", Type::Ref(course));
    p.args.push_back({"course", Type::Ref(course), false});
    ExprP matched =
        soir::MakeFilter(soir::MakeAll(course), {}, s.model(course).pk_name(), CmpOp::kEq, co);
    p.commands.push_back(Delete(matched));
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace noctua::baseline
