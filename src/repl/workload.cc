#include "src/repl/workload.h"

#include "src/support/check.h"

namespace noctua::repl {

WorkloadGenerator::WorkloadGenerator(const soir::Schema& schema,
                                     const std::vector<soir::CodePath>& paths,
                                     double write_ratio, uint64_t seed)
    : schema_(schema), write_ratio_(write_ratio), rng_(seed) {
  for (const soir::CodePath& p : paths) {
    (p.IsEffectful() ? writes_ : reads_).push_back(&p);
  }
  NOCTUA_CHECK_MSG(!writes_.empty(), "workload needs at least one effectful path");
  if (reads_.empty()) {
    write_ratio_ = 1.0;  // nothing to read; everything is a write
  }
}

void WorkloadGenerator::SeedDatabase(orm::Database* db, int rows_per_model, uint64_t seed) {
  Rng rng(seed);
  const soir::Schema& schema = db->schema();
  for (size_t m = 0; m < schema.num_models(); ++m) {
    const soir::ModelDef& md = schema.model(static_cast<int>(m));
    for (int i = 0; i < rows_per_model; ++i) {
      orm::Row row;
      for (const soir::FieldDef& fd : md.fields()) {
        switch (fd.type) {
          case soir::FieldType::kBool:
            row.push_back(orm::Value::Bool(rng.NextBool()));
            break;
          case soir::FieldType::kString:
            // Unique string columns get per-row values.
            row.push_back(orm::Value::Str(fd.name + "_" + std::to_string(m) + "_" +
                                          std::to_string(i)));
            break;
          default:
            row.push_back(orm::Value::Int(fd.positive ? rng.NextInRange(1, 50)
                                                      : rng.NextInRange(0, 50)));
            break;
        }
      }
      db->Upsert(static_cast<int>(m), db->NewId(static_cast<int>(m)), std::move(row));
    }
  }
  // Wire every many-to-one relation so relation traversals find targets.
  for (const soir::RelationDef& rel : schema.relations()) {
    std::vector<int64_t> from = db->AllPks(rel.from_model);
    std::vector<int64_t> to = db->AllPks(rel.to_model);
    if (to.empty()) {
      continue;
    }
    for (int64_t pk : from) {
      db->Link(rel.id, pk, to[rng.NextBelow(to.size())]);
    }
  }
}

const std::vector<std::string>& WorkloadGenerator::StringPool(const soir::CodePath* path) {
  auto it = string_pools_.find(path);
  if (it != string_pools_.end()) {
    return it->second;
  }
  std::vector<std::string>& pool = string_pools_[path];
  soir::VisitExprs(*path, [&](const soir::Expr& e) {
    if (e.kind == soir::ExprKind::kStrLit && !e.str.empty()) {
      pool.push_back(e.str);
    }
  });
  return pool;
}

Request WorkloadGenerator::Next(orm::Database* origin) {
  bool is_write = rng_.NextDouble() < write_ratio_;
  const auto& pool = is_write ? writes_ : reads_;
  Request req = ForPath(*pool[rng_.NextBelow(pool.size())], origin);
  req.is_write = is_write;
  return req;
}

Request WorkloadGenerator::ForPath(const soir::CodePath& path, orm::Database* origin) {
  Request req;
  req.path = &path;
  req.is_write = path.IsEffectful();

  for (const soir::ArgDef& arg : req.path->args) {
    switch (arg.type.kind) {
      case soir::Type::Kind::kRef: {
        if (arg.unique_id) {
          req.args[arg.name] = orm::Value::Ref(origin->NewId(arg.type.model_id));
          break;
        }
        std::vector<int64_t> pks = origin->AllPks(arg.type.model_id);
        req.args[arg.name] =
            pks.empty() ? orm::Value::Ref(0) : orm::Value::Ref(pks[rng_.NextBelow(pks.size())]);
        break;
      }
      case soir::Type::Kind::kBool:
        req.args[arg.name] = orm::Value::Bool(rng_.NextBool());
        break;
      case soir::Type::Kind::kString: {
        const std::vector<std::string>& pool = StringPool(req.path);
        if (!pool.empty() && rng_.Chance(0.7)) {
          req.args[arg.name] = orm::Value::Str(pool[rng_.NextBelow(pool.size())]);
        } else {
          req.args[arg.name] = orm::Value::Str("w" + std::to_string(rng_.NextBelow(1000)));
        }
        break;
      }
      default:
        req.args[arg.name] = orm::Value::Int(rng_.NextInRange(0, 20));
        break;
    }
  }
  return req;
}

}  // namespace noctua::repl
