#include "src/repl/trace_check.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/repl/simulator.h"
#include "src/support/strings.h"

namespace noctua::repl {

std::string TraceViolation::Describe() const {
  std::string a = "op " + std::to_string(op_a) + "(" + endpoint_a + ")";
  std::string b = "op " + std::to_string(op_b) + "(" + endpoint_b + ")";
  if (kind == Kind::kSessionOrder) {
    return "session-order break: site " + std::to_string(site_a) + " applied " + b +
           " before " + a + ", but " + a + " precedes " + b +
           " in origin site " + std::to_string(site_b) + "'s commit order";
  }
  return "conflict-order cycle: " + a + " -> " + b + " at site " +
         std::to_string(site_a) + ", " + b + " -> " + a + " at site " +
         std::to_string(site_b) + " [restricted pair (" + endpoint_a + ", " +
         endpoint_b + ")]";
}

namespace {

struct PositionIndex {
  // pos[s][op index] = apply position at site s, -1 when the site never applied it.
  std::vector<std::vector<int32_t>> pos;

  PositionIndex(const ExecutionTrace& trace,
                const std::unordered_map<int64_t, int32_t>& index) {
    pos.assign(trace.site_order.size(),
               std::vector<int32_t>(trace.ops.size(), -1));
    for (size_t s = 0; s < trace.site_order.size(); ++s) {
      const auto& order = trace.site_order[s];
      for (size_t p = 0; p < order.size(); ++p) {
        auto it = index.find(order[p]);
        if (it != index.end()) {
          pos[s][it->second] = static_cast<int32_t>(p);
        }
      }
    }
  }
};

}  // namespace

TraceCheckResult CheckTrace(const ExecutionTrace& trace, const ConflictTable& conflicts) {
  TraceCheckResult res;
  res.ops = trace.ops.size();
  if (!trace.recorded || trace.ops.empty()) {
    return res;
  }
  const size_t num_sites = trace.site_order.size();
  std::unordered_map<int64_t, int32_t> index;
  index.reserve(trace.ops.size() * 2);
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    index.emplace(trace.ops[i].id, static_cast<int32_t>(i));
  }

  auto witness = [&](TraceViolation v) {
    ++res.violations;
    if (!res.has_witness) {
      res.has_witness = true;
      res.first = std::move(v);
    }
  };

  // --- 1. Session order: each origin's commits apply in origin_seq order everywhere.
  for (size_t s = 0; s < num_sites; ++s) {
    std::map<int, std::pair<int64_t, int64_t>> last;  // origin -> (seq, op id)
    for (int64_t id : trace.site_order[s]) {
      auto it = index.find(id);
      if (it == index.end()) {
        continue;
      }
      const TraceOp& op = trace.ops[it->second];
      auto [lit, inserted] = last.try_emplace(op.origin, op.origin_seq, op.id);
      if (!inserted) {
        if (op.origin_seq < lit->second.first) {
          TraceViolation v;
          v.kind = TraceViolation::Kind::kSessionOrder;
          v.op_a = op.id;  // earlier in the origin's commit order
          v.op_b = lit->second.second;
          v.endpoint_a = op.endpoint;
          v.endpoint_b = trace.ops[index.at(lit->second.second)].endpoint;
          v.site_a = static_cast<int>(s);
          v.site_b = op.origin;
          witness(std::move(v));
        } else {
          lit->second = {op.origin_seq, op.id};
        }
      }
    }
  }

  // --- 2. Conflict order: restricted pairs apply in one global order at every site.
  std::map<std::string, std::vector<int32_t>> by_endpoint;  // sorted for determinism
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    by_endpoint[trace.ops[i].endpoint].push_back(static_cast<int32_t>(i));
  }
  PositionIndex positions(trace, index);

  // Checks one restricted endpoint pair (its two op groups) for cross-site agreement.
  auto check_group_pair = [&](const std::vector<int32_t>& a_ops,
                              const std::vector<int32_t>& b_ops, bool same_group) {
    for (size_t i = 0; i < a_ops.size(); ++i) {
      size_t j_begin = same_group ? i + 1 : 0;
      for (size_t j = j_begin; j < b_ops.size(); ++j) {
        int32_t a = a_ops[i];
        int32_t b = b_ops[j];
        if (a == b) {
          continue;
        }
        int ref_sign = 0;
        size_t ref_site = 0;
        bool counted = false;
        for (size_t s = 0; s < num_sites; ++s) {
          int32_t pa = positions.pos[s][a];
          int32_t pb = positions.pos[s][b];
          if (pa < 0 || pb < 0) {
            continue;  // this site never applied one of them (e.g. crash horizon)
          }
          if (!counted) {
            counted = true;
            ++res.pairs_checked;
          }
          int sign = pa < pb ? 1 : -1;
          if (ref_sign == 0) {
            ref_sign = sign;
            ref_site = s;
          } else if (sign != ref_sign) {
            const TraceOp& oa = trace.ops[a];
            const TraceOp& ob = trace.ops[b];
            TraceViolation v;
            // Orient the witness as "first site's order, then the dissenting site".
            v.op_a = ref_sign > 0 ? oa.id : ob.id;
            v.op_b = ref_sign > 0 ? ob.id : oa.id;
            v.endpoint_a = ref_sign > 0 ? oa.endpoint : ob.endpoint;
            v.endpoint_b = ref_sign > 0 ? ob.endpoint : oa.endpoint;
            v.site_a = static_cast<int>(ref_site);
            v.site_b = static_cast<int>(s);
            witness(std::move(v));
            break;  // one violation per op pair
          }
        }
      }
    }
  };

  if (conflicts.total()) {
    for (auto a = by_endpoint.begin(); a != by_endpoint.end(); ++a) {
      for (auto b = a; b != by_endpoint.end(); ++b) {
        check_group_pair(a->second, b->second, a == b);
      }
    }
  } else {
    for (const auto& [p, q] : conflicts.pairs()) {
      auto a = by_endpoint.find(p);
      auto b = by_endpoint.find(q);
      if (a == by_endpoint.end() || b == by_endpoint.end()) {
        continue;  // the workload never exercised this pair
      }
      check_group_pair(a->second, b->second, p == q);
    }
  }
  return res;
}

}  // namespace noctua::repl
