// Sharded lease-based coordination service: the runtime *enforcement* of a computed
// restriction set.
//
// The omniscient coordinator in simulator.cc admits operations against a global
// active-set — fine for replaying the paper's figures, but it is not a protocol a real
// deployment could run. This class is that protocol, as a deterministic state machine
// driven by the simulator's event loop:
//
//   * One **pair-lock** per restricted endpoint pair (E, F), hashed to one of
//     `num_shards` lock shards. A pair-lock is a two-mode group lock: any number of
//     E-operations may hold it concurrently, or any number of F-operations, but never
//     both — exactly the mutual exclusion the restriction (E, F) demands and nothing
//     more. A self-pair (E, E) degenerates to a mutex over E's operations.
//   * **Batched, ordered acquisition.** An operation on endpoint E needs every pair-lock
//     whose pair contains E. Locks are acquired one at a time in a global canonical
//     order (shard index, then pair name), and an operation only ever waits for a lock
//     *later* in that order than everything it already holds — the classic total-order
//     argument: no wait cycle, no deadlock. Waiters queue FIFO per lock, so no
//     starvation either.
//   * **Leases with expiry.** Every registration (queued or granted) carries a lease
//     deadline; the origin renews it while its operation is still running. A crashed or
//     partitioned holder stops renewing and its locks are reaped by ExpireDue — the
//     failure detector of the enforcement layer. An expired-but-alive holder is the
//     honest failure mode: the coordinator moved on, and any resulting anomaly is the
//     trace checker's job to catch.
//   * **Epoch fencing.** Each site carries an epoch, bumped on restart. The service
//     tracks the highest epoch seen per site and rejects messages from older
//     incarnations (counted in stats().fencing_rejections); observing a *newer* epoch
//     immediately revokes every holding of the site's previous incarnation, so a
//     restarted replica can never be blocked by its own pre-crash ghosts.
//   * **Degradation to strong consistency.** When an origin has retried admission to an
//     unreachable shard past its backoff budget, it re-requests in degraded mode: the
//     operation is granted the service-global exclusive latch (compatible with nothing
//     that holds or wants any pair-lock) instead of its fine-grained locks. Strictly
//     stronger than any restriction set, hence always safe — the cost is serial
//     execution for that operation, which is the documented trade.
//
// Everything is deterministic: no clocks, no threads, no randomness. Time comes in as
// `now` arguments from the simulator, so a (plan, seed) pair replays bit-for-bit.
#ifndef SRC_REPL_COORD_H_
#define SRC_REPL_COORD_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace noctua::repl {

class ConflictTable;

// Tuning of the enforcement layer, carried inside SimOptions. `enabled` routes the
// simulator's admission path through a LeaseCoordinator instead of the omniscient
// active-set coordinator; `record_trace` (independent of `enabled`) makes the simulator
// record the per-site operation history that trace_check.h validates offline.
struct EnforceOptions {
  bool enabled = false;
  int num_shards = 4;       // lock shards; pair-locks hash across them
  double lease_ms = 80.0;   // lease duration granted per registration/renewal
  double renew_interval_ms = 10.0;  // origin-side renewal period while an op runs
  int degrade_after_retries = 6;    // admission attempts before degrading to exclusive
  bool record_trace = true;
  // Service-cost model: issuing a grant costs a fixed overhead plus one unit per
  // pair-lock acquired, so a larger restriction set is measurably slower to enforce
  // (the "oversized set shows up as lost throughput" half of the oracle).
  double acquire_overhead_ms = 0.02;
  double per_lock_overhead_ms = 0.02;

  // One lock shard's request queue unreachable during [start_ms, end_ms): admissions
  // and renewals routed to it are lost. Whole-service outages stay in FaultPlan.
  struct ShardOutage {
    int shard = 0;
    double start_ms = 0;
    double end_ms = 0;
  };
  std::vector<ShardOutage> shard_outages;

  bool ShardDown(int shard, double t_ms) const {
    for (const ShardOutage& o : shard_outages) {
      if (o.shard == shard && t_ms >= o.start_ms && t_ms < o.end_ms) {
        return true;
      }
    }
    return false;
  }
};

// Applies the NOCTUA_ENFORCE* environment knobs on top of `base` and returns the
// result. Strict fail-fast validation (the NOCTUA_THREADS discipline, escalated to
// fatal): junk or out-of-range values abort with a message naming the variable, never
// silently default.
//   NOCTUA_ENFORCE          0 or 1 — master switch
//   NOCTUA_ENFORCE_SHARDS   integer in [1, 64]
//   NOCTUA_ENFORCE_LEASE_MS decimal in (0, 60000]
EnforceOptions ApplyEnforceEnv(EnforceOptions base = {});

class LeaseCoordinator {
 public:
  struct Options {
    int num_shards = 4;
    double lease_ms = 80.0;
  };

  // The conflict table must outlive the coordinator. Pair-locks are materialized lazily
  // (first operation that needs one), so total-mode tables and syntactic
  // over-approximations work without enumerating the pair universe.
  LeaseCoordinator(const ConflictTable& conflicts, Options options);

  // Result of processing one service-side message or an expiry sweep.
  struct Outcome {
    bool fenced = false;            // message rejected: stale epoch
    bool renewed = false;           // Renew found a live registration and extended it
    std::vector<int64_t> granted;   // ops that became fully granted (send them grants)
    std::vector<int64_t> expired;   // ops revoked (lease ran out or epoch fenced away)
  };

  struct Stats {
    uint64_t acquires = 0;            // admission registrations accepted
    uint64_t grants = 0;              // grants issued (including re-sent)
    uint64_t expiries = 0;            // registrations reaped by lease expiry / fencing
    uint64_t fencing_rejections = 0;  // stale-epoch messages rejected
    uint64_t degradations = 0;        // ops granted via the exclusive latch
    uint64_t lock_waits = 0;          // times an op queued on a busy pair-lock
  };

  // Registers (or re-registers after an expiry) an admission for `op` on `endpoint`
  // from `site` at `epoch`; advances lock acquisition as far as possible. Idempotent:
  // an already-active op gets its grant re-sent (`granted` contains it again).
  // `degraded` requests the exclusive latch instead of fine-grained pair-locks.
  Outcome Acquire(int64_t op, const std::string& endpoint, int site, int64_t epoch,
                  double now, bool degraded);

  // Releases everything `op` holds and wakes whatever that unblocks. Releasing an
  // unknown (already expired / already released) op is a harmless no-op — release must
  // be idempotent under duplicated and re-sent messages.
  Outcome Release(int64_t op, int site, int64_t epoch, double now);

  // Extends `op`'s lease to now + lease_ms. Unknown ops are ignored.
  Outcome Renew(int64_t op, int site, int64_t epoch, double now);

  // Reaps every registration whose lease deadline is <= now; returns the reaped ops in
  // `expired` and any newly unblocked waiters in `granted`.
  Outcome ExpireDue(double now);

  // Earliest lease deadline currently armed (+inf when idle): when the simulator
  // should schedule its next expiry sweep.
  double NextDeadline() const;

  // Shard an endpoint's admission traffic is routed to (for shard-outage modelling).
  int HomeShard(const std::string& endpoint) const;
  // Number of pair-locks an op on `endpoint` must take (the grant-cost multiplier).
  size_t NumLocks(const std::string& endpoint) const;

  bool IsActive(int64_t op) const;
  const Stats& stats() const { return stats_; }

 private:
  // Canonical identity of one pair-lock: shard first so acquisition order follows the
  // shard layout, then the pair name for a total order within a shard.
  struct LockKey {
    int shard = 0;
    std::string a;  // endpoint pair, a <= b
    std::string b;
    bool operator<(const LockKey& o) const {
      if (shard != o.shard) return shard < o.shard;
      if (a != o.a) return a < o.a;
      return b < o.b;
    }
  };

  struct Lock {
    // Which endpoint's operations currently hold the lock ("" when free). A self-pair
    // lock (a == b) additionally allows at most one holder.
    std::string side;
    std::set<int64_t> holders;
    std::deque<int64_t> waiters;  // FIFO; only the front may proceed
  };

  struct Registration {
    int64_t op = 0;
    std::string endpoint;
    int site = 0;
    int64_t epoch = 0;
    bool degraded = false;
    std::vector<LockKey> keys;  // sorted; acquired in order
    size_t next_key = 0;        // keys[0, next_key) are held
    bool active = false;        // fully granted
    bool queued = false;        // parked in wait_key's FIFO
    LockKey wait_key;
    double deadline = 0;        // lease expiry
  };

  bool Fenced(int site, int64_t epoch, Outcome* out);
  // Tries to advance `reg` through its remaining keys; returns true when fully granted.
  bool Advance(Registration* reg);
  // Frees everything `reg` holds and pulls it out of wait queues, then wakes waiters.
  void Drop(Registration* reg, Outcome* out);
  // Re-runs the wait queue of `key` after capacity was freed.
  void WakeWaiters(const LockKey& key, Outcome* out);
  bool LockCompatible(const Lock& lock, const Registration& reg) const;
  // Epilogue of every public entry point: filters revoked grants out of `out` and, when
  // NOCTUA_COORD_SELFCHECK=1, audits the full lock/registration state.
  Outcome Finish(Outcome out, const char* where) const;
  // Aborts (with the offending call site) if the service state is inconsistent: an
  // active registration not holding all its locks, a queued flag without a queue entry,
  // or two active registrations on conflicting endpoints.
  void SelfCheck(const char* where) const;
  std::vector<LockKey> KeysFor(const std::string& endpoint) const;
  bool ExclusiveLatchFree() const;
  void TryGrantDegraded(Outcome* out);

  const ConflictTable& conflicts_;
  Options options_;
  std::map<LockKey, Lock> locks_;
  std::map<int64_t, Registration> regs_;
  std::map<int, int64_t> site_epochs_;  // highest epoch seen per site
  size_t holding_regs_ = 0;             // registrations holding >= 1 lock or active
  int64_t degraded_active_ = -1;        // op currently holding the exclusive latch
  std::deque<int64_t> degraded_queue_;  // ops waiting for the latch
  Stats stats_;
};

}  // namespace noctua::repl

#endif  // SRC_REPL_COORD_H_
