// Offline execution-trace consistency checker — the validation half of the end-to-end
// oracle (the checking side of Biswas & Enea-style history verification, specialized to
// PoR consistency over a restriction set).
//
// The simulator records, per site, the exact order in which committed write operations
// were applied (own executions plus replicated effects). PoR consistency demands two
// things of that history:
//
//   1. **Session order**: each origin's operations are applied at every site in the
//      origin's commit order (the per-origin sequence numbers).
//   2. **Conflict order**: any two operations whose endpoints are related by the
//      restriction set are applied in the *same* relative order at every site.
//
// A restriction set that is too small lets conflicting operations run uncoordinated,
// and the replicas apply them in different orders — exactly a conflict-order
// disagreement: site s applied a before b, site s' applied b before a, i.e. the cycle
// a -> b -> a in the union of the per-site conflict orders. The checker reports the
// first such pair with that two-edge witness cycle. With the computed restriction set
// intact the checker must find nothing, on any fault plan — which is what turns the
// chaos grid into an oracle for every solver/analyzer change upstream.
//
// Complexity: session order is O(total applies); conflict order groups operations by
// endpoint and compares, per restricted endpoint pair (E, F) and per site, the relative
// order of every cross pair against site 0 — O(S * sum over restricted (E,F) of
// |ops_E| * |ops_F|) integer position comparisons, the dense-witness analogue of a
// polygraph acyclicity check and comfortably sub-second at chaos-grid scale.
#ifndef SRC_REPL_TRACE_CHECK_H_
#define SRC_REPL_TRACE_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace noctua::repl {

class ConflictTable;

// One committed write operation, registered at its origin commit.
struct TraceOp {
  int64_t id = 0;
  std::string endpoint;
  int origin = 0;
  int64_t origin_seq = 0;  // per-origin commit sequence number
};

// The recorded history of one simulator run. `site_order[s]` lists operation ids in the
// exact order site s applied them (its own commits plus replicated effects, whether
// delivered directly, via gap-buffer drain, or by anti-entropy catch-up).
struct ExecutionTrace {
  std::vector<TraceOp> ops;
  std::vector<std::vector<int64_t>> site_order;
  bool recorded = false;

  void Clear(int num_sites) {
    ops.clear();
    site_order.assign(static_cast<size_t>(num_sites), {});
    recorded = true;
  }
};

struct TraceViolation {
  enum class Kind : uint8_t { kConflictOrder, kSessionOrder };
  Kind kind = Kind::kConflictOrder;
  int64_t op_a = 0;
  int64_t op_b = 0;
  std::string endpoint_a;
  std::string endpoint_b;
  // kConflictOrder: site_a applied op_a before op_b, site_b applied them the other way
  // around — the witness cycle op_a -> op_b (at site_a) -> op_a (at site_b).
  // kSessionOrder: site_a applied op_b before op_a although op_a precedes op_b in their
  // shared origin's commit order; site_b is that origin.
  int site_a = 0;
  int site_b = 0;

  // Human-readable witness, e.g.
  // "conflict-order cycle: op 12(transfer) -> op 31(deposit) at site 0, op 31 -> op 12
  //  at site 2 [restricted pair (deposit, transfer)]".
  std::string Describe() const;
};

struct TraceCheckResult {
  uint64_t ops = 0;            // operations in the trace
  uint64_t pairs_checked = 0;  // conflicting op pairs whose cross-site order was compared
  uint64_t violations = 0;     // total order disagreements + session-order breaks
  bool has_witness = false;
  TraceViolation first;  // valid when has_witness

  bool ok() const { return violations == 0; }
};

// Validates `trace` against the consistency model plus the restriction set `conflicts`.
// Counts every violation but keeps only the first witness (deterministic: smallest
// (endpoint pair, op id) in canonical order).
TraceCheckResult CheckTrace(const ExecutionTrace& trace, const ConflictTable& conflicts);

}  // namespace noctua::repl

#endif  // SRC_REPL_TRACE_CHECK_H_
