// Workload generation for the end-to-end experiment (paper §6.5): random HTTP-like
// requests over an application's extracted code paths, with a configurable write ratio
// ("the 15% workload means only 15% are writes").
#ifndef SRC_REPL_WORKLOAD_H_
#define SRC_REPL_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "src/orm/database.h"
#include "src/soir/ast.h"
#include "src/soir/interp.h"
#include "src/support/rng.h"

namespace noctua::repl {

struct Request {
  const soir::CodePath* path = nullptr;
  soir::ArgValues args;
  bool is_write = false;
};

class WorkloadGenerator {
 public:
  // `paths` must outlive the generator. Read-only paths serve the (1 - write_ratio)
  // fraction of requests.
  WorkloadGenerator(const soir::Schema& schema, const std::vector<soir::CodePath>& paths,
                    double write_ratio, uint64_t seed);

  // Generates the next request, choosing argument values against the given replica state
  // (existing row IDs for Ref args, fresh striped IDs for unique-id args).
  Request Next(orm::Database* origin);

  // Generates a request for one specific path (used by the differential property tests).
  Request ForPath(const soir::CodePath& path, orm::Database* origin);

  // Seeds `db` with `rows_per_model` rows per model so reads have something to find.
  static void SeedDatabase(orm::Database* db, int rows_per_model, uint64_t seed);

 private:
  // String literals mentioned by a path's expressions — used to generate string arguments
  // that can actually satisfy branch conditions like action == "delete".
  const std::vector<std::string>& StringPool(const soir::CodePath* path);

  const soir::Schema& schema_;
  std::map<const soir::CodePath*, std::vector<std::string>> string_pools_;
  std::vector<const soir::CodePath*> writes_;
  std::vector<const soir::CodePath*> reads_;
  double write_ratio_;
  Rng rng_;
};

}  // namespace noctua::repl

#endif  // SRC_REPL_WORKLOAD_H_
