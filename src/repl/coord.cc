#include "src/repl/coord.h"

#include <algorithm>

#include "src/repl/simulator.h"
#include "src/support/check.h"
#include "src/support/env.h"

namespace noctua::repl {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Dropping one registration can wake a second one that the same sweep then also drops
// (e.g. two ghosts of one fenced cohort queued on the same lock). Such an op must not
// be reported as granted — its grant was revoked within the same service step.
void StripRevoked(LeaseCoordinator::Outcome* out) {
  if (out->expired.empty() || out->granted.empty()) {
    return;
  }
  std::erase_if(out->granted, [&](int64_t op) {
    return std::find(out->expired.begin(), out->expired.end(), op) != out->expired.end();
  });
}

bool SelfCheckEnabled() {
  static const bool enabled = env::FlagSet("NOCTUA_COORD_SELFCHECK");
  return enabled;
}

}  // namespace

EnforceOptions ApplyEnforceEnv(EnforceOptions base) {
  // Enforcement knobs are fail-fast (see src/support/env.h): a malformed value is a
  // fatal error, because silently mis-enforcing a restriction set is worse than
  // stopping.
  base.enabled = env::RequireBool01("NOCTUA_ENFORCE", base.enabled);
  base.num_shards =
      static_cast<int>(env::RequireLongInRange("NOCTUA_ENFORCE_SHARDS", 1, 64, base.num_shards));
  base.lease_ms = env::RequireDoubleInRange("NOCTUA_ENFORCE_LEASE_MS", 0.0, 60000.0, base.lease_ms);
  return base;
}

LeaseCoordinator::LeaseCoordinator(const ConflictTable& conflicts, Options options)
    : conflicts_(conflicts), options_(options) {
  NOCTUA_CHECK(options_.num_shards >= 1);
  NOCTUA_CHECK(options_.lease_ms > 0);
}

int LeaseCoordinator::HomeShard(const std::string& endpoint) const {
  return static_cast<int>(Fnv1a(endpoint) % static_cast<uint64_t>(options_.num_shards));
}

std::vector<LeaseCoordinator::LockKey> LeaseCoordinator::KeysFor(
    const std::string& endpoint) const {
  std::vector<LockKey> keys;
  if (conflicts_.total()) {
    // Strong consistency: one global exclusive pair-lock shared by every endpoint.
    keys.push_back({0, "*", "*"});
    return keys;
  }
  for (const auto& [a, b] : conflicts_.pairs()) {
    if (a == endpoint || b == endpoint) {
      int shard = static_cast<int>(Fnv1a(a + "|" + b) %
                                   static_cast<uint64_t>(options_.num_shards));
      keys.push_back({shard, a, b});
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t LeaseCoordinator::NumLocks(const std::string& endpoint) const {
  return KeysFor(endpoint).size();
}

bool LeaseCoordinator::IsActive(int64_t op) const {
  auto it = regs_.find(op);
  return it != regs_.end() && it->second.active;
}

double LeaseCoordinator::NextDeadline() const {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& [_, reg] : regs_) {
    next = std::min(next, reg.deadline);
  }
  return next;
}

bool LeaseCoordinator::LockCompatible(const Lock& lock, const Registration& reg) const {
  if (lock.holders.empty()) {
    return true;
  }
  if (lock.side.empty()) {  // exclusive (self-pair or total-mode) lock held
    return false;
  }
  return lock.side == reg.endpoint;
}

bool LeaseCoordinator::ExclusiveLatchFree() const {
  return degraded_active_ == -1 && holding_regs_ == 0;
}

bool LeaseCoordinator::Advance(Registration* reg) {
  // A degraded registration has no fine-grained keys; advancing it would grant it
  // instantly and bypass the latch. Callers must route it through TryGrantDegraded.
  NOCTUA_CHECK(!reg->degraded);
  const bool latch_pending = degraded_active_ != -1 || !degraded_queue_.empty();
  while (reg->next_key < reg->keys.size()) {
    // New arrivals hold their first acquisition while a degraded op needs the exclusive
    // latch; ops already in line (queued) or already holding locks drain normally, so
    // the latch is reached without deadlock and without starving the degraded op.
    if (reg->next_key == 0 && !reg->queued && latch_pending) {
      return false;
    }
    const LockKey& key = reg->keys[reg->next_key];
    Lock& lock = locks_[key];
    const bool self_pair = key.a == key.b;
    bool at_front = reg->queued && !lock.waiters.empty() && lock.waiters.front() == reg->op;
    if (reg->queued && !at_front) {
      return false;  // queued here (or elsewhere) but not first in line
    }
    if (!LockCompatible(lock, *reg) || (!reg->queued && !lock.waiters.empty())) {
      if (!reg->queued) {
        lock.waiters.push_back(reg->op);
        reg->queued = true;
        reg->wait_key = key;
        ++stats_.lock_waits;
      }
      return false;
    }
    if (at_front) {
      lock.waiters.pop_front();
      reg->queued = false;
    }
    if (reg->next_key == 0) {
      ++holding_regs_;
    }
    lock.holders.insert(reg->op);
    lock.side = self_pair ? std::string() : reg->endpoint;
    ++reg->next_key;
  }
  reg->active = true;
  return true;
}

void LeaseCoordinator::WakeWaiters(const LockKey& key, Outcome* out) {
  for (;;) {
    auto lit = locks_.find(key);
    if (lit == locks_.end() || lit->second.waiters.empty()) {
      return;
    }
    int64_t front = lit->second.waiters.front();
    auto rit = regs_.find(front);
    if (rit == regs_.end()) {
      lit->second.waiters.pop_front();  // stale entry of a dropped registration
      continue;
    }
    if (rit->second.degraded) {
      // A registration that switched to the degraded path never waits in a pair-lock
      // queue; its entry here is stale. Never Advance it — with its key list cleared,
      // Advance would grant it instantly, bypassing the exclusive latch.
      lit->second.waiters.pop_front();
      continue;
    }
    if (Advance(&rit->second)) {
      ++stats_.grants;
      out->granted.push_back(front);
      // Advance dequeues the front itself when it passes through this lock; if it
      // became active without doing so (e.g. its key list no longer includes this
      // lock), drop the entry here — the loop must always make progress.
      lit = locks_.find(key);
      if (lit != locks_.end() && !lit->second.waiters.empty() &&
          lit->second.waiters.front() == front) {
        lit->second.waiters.pop_front();
      }
      continue;  // the next waiter may be compatible too (same side joins)
    }
    if (rit->second.queued && !(rit->second.wait_key < key) &&
        !(key < rit->second.wait_key)) {
      return;  // front is still blocked right here; FIFO order holds everyone behind
    }
    // Front no longer waits at this lock (advanced past it and re-queued later in its
    // order, or switched to the degraded path): drop the stale entry and keep waking.
    if (!lit->second.waiters.empty() && lit->second.waiters.front() == front) {
      lit->second.waiters.pop_front();
    }
  }
}

void LeaseCoordinator::Drop(Registration* reg, Outcome* out) {
  if (reg->degraded) {
    if (degraded_active_ == reg->op) {
      degraded_active_ = -1;
    } else {
      std::erase(degraded_queue_, reg->op);
    }
  }
  if (reg->queued) {
    auto lit = locks_.find(reg->wait_key);
    if (lit != locks_.end()) {
      std::erase(lit->second.waiters, reg->op);
    }
    reg->queued = false;
  }
  bool held_any = reg->next_key > 0;
  std::vector<LockKey> to_wake;
  for (size_t i = 0; i < reg->next_key; ++i) {
    const LockKey& key = reg->keys[i];
    Lock& lock = locks_.at(key);
    lock.holders.erase(reg->op);
    if (lock.holders.empty()) {
      lock.side.clear();
    }
    to_wake.push_back(key);
  }
  reg->next_key = 0;
  reg->active = false;
  if (held_any) {
    NOCTUA_CHECK(holding_regs_ > 0);
    --holding_regs_;
  }
  for (const LockKey& key : to_wake) {
    WakeWaiters(key, out);
  }
  TryGrantDegraded(out);
}

void LeaseCoordinator::TryGrantDegraded(Outcome* out) {
  while (degraded_active_ == -1 && !degraded_queue_.empty() && holding_regs_ == 0) {
    int64_t op = degraded_queue_.front();
    auto it = regs_.find(op);
    if (it == regs_.end()) {
      degraded_queue_.pop_front();
      continue;
    }
    degraded_queue_.pop_front();
    degraded_active_ = op;
    it->second.active = true;
    ++stats_.grants;
    ++stats_.degradations;
    out->granted.push_back(op);
    return;
  }
  if (degraded_active_ == -1 && degraded_queue_.empty()) {
    // The latch cleared: resume every arrival that was held at its first lock.
    std::vector<int64_t> stalled;
    for (auto& [op, reg] : regs_) {
      if (!reg.active && !reg.degraded && !reg.queued && reg.next_key == 0 &&
          !reg.keys.empty()) {
        stalled.push_back(op);
      }
    }
    for (int64_t op : stalled) {
      auto it = regs_.find(op);
      if (it != regs_.end() && Advance(&it->second)) {
        ++stats_.grants;
        out->granted.push_back(op);
      }
    }
  }
}

LeaseCoordinator::Outcome LeaseCoordinator::Finish(Outcome out, const char* where) const {
  StripRevoked(&out);
  SelfCheck(where);
  return out;
}

void LeaseCoordinator::SelfCheck(const char* where) const {
  if (!SelfCheckEnabled()) {
    return;
  }
  for (const auto& [op, reg] : regs_) {
    if (reg.degraded) {
      NOCTUA_CHECK_MSG(!reg.active || degraded_active_ == op,
                       where << ": degraded op " << op << " active without the latch");
      continue;
    }
    if (reg.active) {
      NOCTUA_CHECK_MSG(reg.next_key == reg.keys.size(),
                       where << ": op " << op << " active holding " << reg.next_key << "/"
                             << reg.keys.size() << " locks");
    }
    for (size_t i = 0; i < reg.next_key; ++i) {
      auto lit = locks_.find(reg.keys[i]);
      NOCTUA_CHECK_MSG(lit != locks_.end() && lit->second.holders.count(op) > 0,
                       where << ": op " << op << " not in holders of its held lock " << i);
    }
    if (reg.queued) {
      auto lit = locks_.find(reg.wait_key);
      bool present =
          lit != locks_.end() &&
          std::find(lit->second.waiters.begin(), lit->second.waiters.end(), op) !=
              lit->second.waiters.end();
      NOCTUA_CHECK_MSG(present,
                       where << ": op " << op << " queued flag without a queue entry");
    }
  }
  // A registration waits in at most one queue at a time; a second entry means a drop
  // or wake path left one behind (the stale-waiter leak that double-grants a lock
  // once the op's flags say it is safe to queue or advance again).
  std::map<int64_t, int> entries;
  for (const auto& [key, lock] : locks_) {
    for (int64_t op : lock.waiters) {
      if (regs_.count(op) > 0) {
        NOCTUA_CHECK_MSG(++entries[op] == 1, where << ": op " << op
                                                   << " queued in more than one place");
      }
    }
  }
  for (auto a = regs_.begin(); a != regs_.end(); ++a) {
    if (!a->second.active) {
      continue;
    }
    for (auto b = std::next(a); b != regs_.end(); ++b) {
      if (!b->second.active) {
        continue;
      }
      NOCTUA_CHECK_MSG(
          !conflicts_.Conflicts(a->second.endpoint, b->second.endpoint),
          where << ": conflicting ops " << a->first << " (" << a->second.endpoint
                << ") and " << b->first << " (" << b->second.endpoint << ") both active");
    }
  }
}

bool LeaseCoordinator::Fenced(int site, int64_t epoch, Outcome* out) {
  int64_t& current = site_epochs_[site];
  if (epoch < current) {
    ++stats_.fencing_rejections;
    out->fenced = true;
    return true;
  }
  if (epoch > current) {
    current = epoch;
    // A newer incarnation announced itself: every holding of the site's previous
    // incarnations is a ghost. Revoke immediately rather than waiting for the lease.
    std::vector<int64_t> stale;
    for (const auto& [op, reg] : regs_) {
      if (reg.site == site && reg.epoch < epoch) {
        stale.push_back(op);
      }
    }
    for (int64_t op : stale) {
      auto node = regs_.extract(op);  // out of the map before Drop's rescan can see it
      Drop(&node.mapped(), out);
      ++stats_.expiries;
      out->expired.push_back(op);
    }
  }
  return false;
}

LeaseCoordinator::Outcome LeaseCoordinator::Acquire(int64_t op, const std::string& endpoint,
                                                    int site, int64_t epoch, double now,
                                                    bool degraded) {
  Outcome out;
  if (Fenced(site, epoch, &out)) {
    return Finish(std::move(out), "Acquire");
  }
  auto it = regs_.find(op);
  if (it != regs_.end()) {
    Registration& reg = it->second;
    reg.deadline = now + options_.lease_ms;  // any contact from the origin renews
    if (degraded && !reg.degraded && !reg.active) {
      // The origin gave up on a shard and switched modes: restart as degraded. The
      // flag flips before Drop so the wake/stall rescan inside Drop cannot re-advance
      // this registration through its fine-grained locks.
      reg.degraded = true;
      Drop(&reg, &out);
      reg.keys.clear();
      degraded_queue_.push_back(op);
      TryGrantDegraded(&out);
      return Finish(std::move(out), "Acquire/upgrade");
    }
    if (reg.active) {
      // Retransmitted admission after a lost grant: grants are idempotent, re-send.
      ++stats_.grants;
      out.granted.push_back(op);
    }
    return Finish(std::move(out), "Acquire/dedup");
  }
  Registration reg;
  reg.op = op;
  reg.endpoint = endpoint;
  reg.site = site;
  reg.epoch = epoch;
  reg.degraded = degraded;
  reg.deadline = now + options_.lease_ms;
  if (!degraded) {
    reg.keys = KeysFor(endpoint);
  }
  ++stats_.acquires;
  Registration& stored = regs_.emplace(op, std::move(reg)).first->second;
  if (stored.degraded) {
    degraded_queue_.push_back(op);
    TryGrantDegraded(&out);
  } else if (Advance(&stored)) {
    ++stats_.grants;
    out.granted.push_back(op);
  }
  return Finish(std::move(out), "Acquire/register");
}

LeaseCoordinator::Outcome LeaseCoordinator::Release(int64_t op, int site, int64_t epoch,
                                                    double now) {
  (void)now;
  Outcome out;
  if (Fenced(site, epoch, &out)) {
    return Finish(std::move(out), "Release");
  }
  auto it = regs_.find(op);
  if (it == regs_.end()) {
    return Finish(std::move(out), "Release");  // already released or expired: idempotent
  }
  // Extract before Drop: Drop ends in a wake/stall rescan over regs_, and a discarded
  // registration left in the map during its own Drop looks exactly like a stalled
  // arrival (inactive, unqueued, holding nothing) — the rescan would re-queue or even
  // re-grant it, leaking a waiter entry or lock holding that outlives the erase.
  auto node = regs_.extract(it);
  Drop(&node.mapped(), &out);
  return Finish(std::move(out), "Release");
}

LeaseCoordinator::Outcome LeaseCoordinator::Renew(int64_t op, int site, int64_t epoch,
                                                  double now) {
  Outcome out;
  if (Fenced(site, epoch, &out)) {
    return Finish(std::move(out), "Renew");
  }
  auto it = regs_.find(op);
  if (it != regs_.end()) {
    it->second.deadline = now + options_.lease_ms;
    // Only a confirmed extension may be acknowledged: the origin's conservative
    // deadline advances on this ack, so acking a renewal that extended nothing (the
    // registration is gone) would let the origin believe in a reclaimed lease.
    out.renewed = true;
  }
  return Finish(std::move(out), "Renew");
}

LeaseCoordinator::Outcome LeaseCoordinator::ExpireDue(double now) {
  Outcome out;
  std::vector<int64_t> due;
  for (const auto& [op, reg] : regs_) {
    if (reg.deadline <= now) {
      due.push_back(op);
    }
  }
  for (int64_t op : due) {
    auto it = regs_.find(op);
    if (it == regs_.end()) {
      continue;
    }
    auto node = regs_.extract(it);  // out of the map before Drop's rescan can see it
    Drop(&node.mapped(), &out);
    ++stats_.expiries;
    out.expired.push_back(op);
  }
  return Finish(std::move(out), "ExpireDue");
}

}  // namespace noctua::repl
