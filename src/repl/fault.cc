#include "src/repl/fault.h"

namespace noctua::repl {

bool FaultPlan::IsZero() const {
  if (!crashes.empty() || !coordinator_outages.empty()) {
    return false;
  }
  if (!link.IsZero()) {
    return false;
  }
  for (const auto& [_, faults] : link_overrides) {
    if (!faults.IsZero()) {
      return false;
    }
  }
  return true;
}

bool FaultPlan::CoordinatorDown(double t_ms) const {
  for (const OutageWindow& w : coordinator_outages) {
    if (t_ms >= w.start_ms && t_ms < w.end_ms) {
      return true;
    }
  }
  return false;
}

const LinkFaults& FaultPlan::LinkFor(int from, int to) const {
  auto it = link_overrides.find({from, to});
  return it != link_overrides.end() ? it->second : link;
}

MessageFate FaultPlan::SampleFate(const LinkFaults& link_faults, Rng* rng) const {
  MessageFate fate;
  if (rng->Chance(link_faults.drop)) {
    fate.dropped = true;
    return fate;
  }
  if (rng->Chance(link_faults.duplicate)) {
    fate.copies = 2;
  }
  return fate;
}

double FaultPlan::SampleExtraDelay(const LinkFaults& link_faults, Rng* rng) const {
  double extra = 0;
  if (link_faults.jitter_ms > 0) {
    extra += rng->NextUniform(0, link_faults.jitter_ms);
  }
  if (link_faults.reorder > 0 && rng->Chance(link_faults.reorder)) {
    extra += rng->NextUniform(0, link_faults.reorder_window_ms);
  }
  if (link_faults.spike > 0 && rng->Chance(link_faults.spike)) {
    extra += rng->NextExponential(link_faults.spike_mean_ms);
  }
  return extra;
}

FaultPlan FaultPlan::Lossy(double drop, double duplicate) {
  FaultPlan plan;
  plan.link.drop = drop;
  plan.link.duplicate = duplicate;
  return plan;
}

FaultPlan FaultPlan::Jittery(double jitter_ms, double reorder, double spike,
                             double spike_mean_ms) {
  FaultPlan plan;
  plan.link.jitter_ms = jitter_ms;
  plan.link.reorder = reorder;
  plan.link.spike = spike;
  plan.link.spike_mean_ms = spike_mean_ms;
  return plan;
}

FaultPlan FaultPlan::CrashRestart(int site, double at_ms, double restart_ms, double drop) {
  FaultPlan plan;
  plan.link.drop = drop;
  plan.crashes.push_back({site, at_ms, restart_ms});
  return plan;
}

FaultPlan FaultPlan::CoordinatorOutage(double start_ms, double end_ms, double drop) {
  FaultPlan plan;
  plan.link.drop = drop;
  plan.coordinator_outages.push_back({start_ms, end_ms});
  return plan;
}

}  // namespace noctua::repl
