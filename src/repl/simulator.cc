#include "src/repl/simulator.h"

#include <algorithm>
#include <queue>

#include "src/support/check.h"

namespace noctua::repl {

void ConflictTable::AddPair(const std::string& a, const std::string& b) {
  pairs_.insert({std::min(a, b), std::max(a, b)});
}

bool ConflictTable::Conflicts(const std::string& a, const std::string& b) const {
  if (total_) {
    return true;
  }
  return pairs_.count({std::min(a, b), std::max(a, b)}) != 0;
}

namespace {

enum class EventKind : uint8_t {
  kClientIssue,   // a client issues its next request
  kCoordGrant,    // admission request reaches the coordinator
  kExecute,       // request executes at its origin site
  kApplyRemote,   // a propagated effect applies at a remote replica
  kRelease,       // release reaches the coordinator
};

struct PendingOp {
  int64_t id = 0;
  int site = 0;
  int client = 0;
  Request request;
  double issued_at = 0;
};

struct Event {
  double time = 0;
  EventKind kind = EventKind::kClientIssue;
  int64_t op = -1;
  int site = -1;    // kClientIssue/kApplyRemote: target site
  int client = -1;  // kClientIssue
  // Deterministic tie-breaking.
  int64_t seq = 0;

  bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

}  // namespace

struct Simulator::Site {
  orm::Database db;
  explicit Site(const soir::Schema* schema) : db(schema) {}
};

Simulator::Simulator(const soir::Schema& schema, const std::vector<soir::CodePath>& paths,
                     ConflictTable conflicts, SimOptions options)
    : schema_(schema), paths_(paths), conflicts_(std::move(conflicts)), options_(options) {}

SimResult Simulator::Run() {
  soir::Interp interp(schema_);
  WorkloadGenerator workload(schema_, paths_, options_.write_ratio, options_.seed);

  // Replicas: identical seeded initial state, per-site striped ID allocation.
  std::vector<Site> sites;
  sites.reserve(options_.num_sites);
  orm::Database seeded(&schema_);
  WorkloadGenerator::SeedDatabase(&seeded, options_.seed_rows_per_model, options_.seed);
  for (int i = 0; i < options_.num_sites; ++i) {
    sites.emplace_back(&schema_);
    sites.back().db = seeded;
    sites.back().db.StripeNewIds(i, options_.num_sites);
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::map<int64_t, PendingOp> ops;
  int64_t next_op = 0;
  int64_t next_seq = 0;

  // Coordinator state: active op ids with their endpoint names, plus a FIFO wait queue.
  std::map<int64_t, std::string> active;
  std::vector<int64_t> waiting;

  SimResult result;
  double total_latency = 0;
  const int coordinator_site = 0;

  auto coord_delay = [&](int site) {
    return site == coordinator_site ? 0.0 : options_.cross_site_latency_ms;
  };
  auto push = [&](double time, EventKind kind, int64_t op, int site = -1, int client = -1) {
    queue.push(Event{time, kind, op, site, client, next_seq++});
  };

  // Admits every waiting op that conflicts with nothing active, in FIFO order.
  auto admit_waiters = [&](double now) {
    for (auto it = waiting.begin(); it != waiting.end();) {
      const PendingOp& op = ops.at(*it);
      const std::string& name = op.request.path->view_name;
      bool blocked = false;
      for (const auto& [_, other] : active) {
        if (conflicts_.Conflicts(name, other)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        ++it;
        continue;
      }
      active[op.id] = name;
      // Grant travels back to the origin site, then the op executes.
      push(now + coord_delay(op.site) + options_.local_exec_ms, EventKind::kExecute, op.id);
      it = waiting.erase(it);
    }
  };

  for (int s = 0; s < options_.num_sites; ++s) {
    for (int c = 0; c < options_.clients_per_site; ++c) {
      push(0.0, EventKind::kClientIssue, -1, s, c);
    }
  }

  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    if (ev.time > options_.duration_ms && ev.kind == EventKind::kClientIssue) {
      continue;  // stop issuing; drain in-flight work
    }
    switch (ev.kind) {
      case EventKind::kClientIssue: {
        PendingOp op;
        op.id = next_op++;
        op.site = ev.site;
        op.client = ev.client;
        op.request = workload.Next(&sites[ev.site].db);
        op.issued_at = ev.time;
        ops[op.id] = std::move(op);
        const PendingOp& ref = ops.at(op.id);
        bool coordinated = options_.strong_consistency || ref.request.is_write;
        if (coordinated) {
          push(ev.time + coord_delay(ref.site), EventKind::kCoordGrant, ref.id);
        } else {
          push(ev.time + options_.local_exec_ms, EventKind::kExecute, ref.id);
        }
        break;
      }
      case EventKind::kCoordGrant: {
        waiting.push_back(ev.op);
        admit_waiters(ev.time);
        break;
      }
      case EventKind::kExecute: {
        PendingOp& op = ops.at(ev.op);
        bool committed = interp.Run(*op.request.path, op.request.args, &sites[op.site].db);
        bool coordinated = options_.strong_consistency || op.request.is_write;
        double done = ev.time;
        ++result.completed_requests;
        if (!committed) {
          ++result.aborted_requests;
        }
        if (op.request.is_write && committed) {
          ++result.committed_writes;
          // Propagate the effect to every remote replica (asynchronous).
          for (int s = 0; s < options_.num_sites; ++s) {
            if (s != op.site) {
              push(ev.time + options_.cross_site_latency_ms, EventKind::kApplyRemote, op.id,
                   s);
            }
          }
        }
        if (coordinated) {
          // The coordination entry is held until the effect has reached every replica, so
          // conflicting operations apply in a single global order at all sites.
          double propagated = committed && op.request.is_write
                                  ? options_.cross_site_latency_ms
                                  : 0.0;
          push(ev.time + propagated + coord_delay(op.site), EventKind::kRelease, op.id);
        }
        total_latency += done - op.issued_at;
        // Closed loop: the client issues its next request.
        push(ev.time, EventKind::kClientIssue, -1, op.site, op.client);
        break;
      }
      case EventKind::kApplyRemote: {
        // Remote replicas apply the propagated mutations; guards were validated at the
        // origin (paper §2.1).
        PendingOp& op = ops.at(ev.op);
        interp.Apply(*op.request.path, op.request.args, &sites[ev.site].db);
        break;
      }
      case EventKind::kRelease: {
        active.erase(ev.op);
        admit_waiters(ev.time);
        break;
      }
    }
  }

  result.duration_ms = options_.duration_ms;
  result.avg_latency_ms =
      result.completed_requests > 0 ? total_latency / result.completed_requests : 0;
  std::set<int> order_models;
  for (const soir::CodePath& p : paths_) {
    std::set<int> m = soir::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }
  result.converged = true;
  for (int s = 1; s < options_.num_sites; ++s) {
    result.converged = result.converged && sites[0].db.SameState(sites[s].db, order_models);
  }
  return result;
}

}  // namespace noctua::repl
