#include "src/repl/simulator.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>

#include "src/obs/obs.h"
#include "src/support/check.h"

namespace noctua::repl {

void ConflictTable::AddPair(const std::string& a, const std::string& b) {
  pairs_.insert({std::min(a, b), std::max(a, b)});
}

bool ConflictTable::Conflicts(const std::string& a, const std::string& b) const {
  if (total_) {
    return true;
  }
  return pairs_.count({std::min(a, b), std::max(a, b)}) != 0;
}

bool ConflictTable::RemovePair(const std::string& a, const std::string& b) {
  return pairs_.erase({std::min(a, b), std::max(a, b)}) != 0;
}

ConflictTable ConservativeConflicts(const soir::Schema& schema,
                                    const std::vector<soir::CodePath>& paths) {
  struct Footprint {
    std::set<int> touched;  // models read or written
    std::set<int> written;
    std::set<int> relations;
    bool effectful = false;
  };
  std::map<std::string, Footprint> endpoints;
  for (const soir::CodePath& p : paths) {
    std::vector<int> reads, writes, rels;
    p.CollectFootprint(schema, &reads, &writes, &rels);
    Footprint& f = endpoints[p.view_name];
    f.touched.insert(reads.begin(), reads.end());
    f.touched.insert(writes.begin(), writes.end());
    f.written.insert(writes.begin(), writes.end());
    f.relations.insert(rels.begin(), rels.end());
    f.effectful = f.effectful || p.IsEffectful();
  }
  auto intersects = [](const std::set<int>& a, const std::set<int>& b) {
    for (int x : a) {
      if (b.count(x)) {
        return true;
      }
    }
    return false;
  };
  ConflictTable table;
  for (auto a = endpoints.begin(); a != endpoints.end(); ++a) {
    for (auto b = a; b != endpoints.end(); ++b) {
      const Footprint& fa = a->second;
      const Footprint& fb = b->second;
      bool conflict = intersects(fa.written, fb.touched) ||
                      intersects(fb.written, fa.touched) ||
                      ((fa.effectful || fb.effectful) &&
                       intersects(fa.relations, fb.relations));
      if (conflict) {
        table.AddPair(a->first, b->first);
      }
    }
  }
  return table;
}

namespace {

enum class EventKind : uint8_t {
  kClientIssue,      // a client issues its next request
  kAdmitArrive,      // admission request reaches the coordinator
  kGrantArrive,      // admission grant reaches the origin site (chaos mode only)
  kExecute,          // request executes at its origin site
  kEffectArrive,     // a propagated effect reaches a remote replica
  kEffectAckArrive,  // a replica's apply-ack reaches the origin (chaos mode only)
  kReleaseArrive,    // release reaches the coordinator
  kReleaseAckArrive, // the coordinator's release-ack reaches the origin (chaos only)
  kRetryTimer,       // origin-local retransmission timer (chaos mode only)
  kCrash,            // a replica fails
  kRestart,          // a failed replica comes back and catches up
  kEvictCrashed,     // coordinator failure detector evicts a crashed site's grants
  kAntiEntropy,      // periodic background sync applies missed effects from the log
  // Enforcement (lease coordinator) events — scheduled only when enforce.enabled.
  kRenewArrive,      // a lease renewal reaches the coordination service
  kRenewAckArrive,   // the coordinator's renewal confirmation reaches the origin
  kLeaseRenewTimer,  // origin-local renewal period while its op is still running
  kLeaseExpiryCheck, // service-side sweep for overdue leases
};

// Retransmission stages, carried in retry-timer events.
enum : uint8_t { kStageAdmit = 0, kStageEffect = 1, kStageRelease = 2 };

// Origin-side protocol state of one request.
enum class Phase : uint8_t {
  kAwaitGrant,       // admission sent, waiting for the grant
  kExecuting,        // grant received (or uncoordinated), execution scheduled
  kAwaitAcks,        // executed, waiting for per-replica effect acks
  kAwaitReleaseAck,  // release sent, waiting for the coordinator's ack
  kDone,
  kGivenUp,  // admission retries exhausted; the client moved on
};

// Coordinator-side state of one request id (the idempotent-dedup ledger).
enum class CoordState : uint8_t { kNone, kWaiting, kActive, kReleased };

struct PendingOp {
  int64_t id = 0;
  int site = 0;
  int client = 0;
  Request request;
  double issued_at = 0;
  bool coordinated = false;
  Phase phase = Phase::kAwaitGrant;
  CoordState coord = CoordState::kNone;
  bool dead = false;          // origin crashed while the request was in flight
  int64_t effect_seq = -1;    // per-origin sequence number of the committed effect
  // Fence watermark carried by a grant issued after a lease reclamation: no replica may
  // apply this op's effect until it has applied every global-log entry below it.
  int64_t effect_prereq = 0;
  // Origin-side conservative lease validity: every admit/renew SEND extends this by
  // lease_ms. The coordinator extends from the message's *arrival*, never earlier, so
  // this deadline lower-bounds the service's — executing past it is never safe.
  double lease_deadline = 0;
  int interval = -1;          // index into the omniscient grant/release interval list
  bool interval_open = false; // an omniscient [grant, release) window is open
  // Enforcement: the origin-site epoch the request was issued under (fencing identity)
  // and whether its admission degraded to the exclusive latch.
  int64_t epoch = 0;
  bool degraded = false;
  int home_shard = 0;
  int admit_attempts = 0;
  int release_attempts = 0;
  std::map<int, int> effect_attempts;  // per target replica
  std::set<int> await_acks;
  std::set<int> acked;
};

struct Event {
  double time = 0;
  EventKind kind = EventKind::kClientIssue;
  int64_t op = -1;
  int site = -1;    // kClientIssue/kEffectArrive/kEffectAckArrive/kCrash/...: subject site
  int client = -1;  // kClientIssue
  uint8_t stage = 0;  // kRetryTimer
  int attempt = 0;    // kRetryTimer
  // kRenewArrive/kRenewAckArrive: send time of the renewal being confirmed. The origin
  // may only extend its conservative lease deadline from this, never from a send.
  double stamp = 0;
  // Deterministic tie-breaking.
  int64_t seq = 0;

  bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

// One committed effect in global commit order. Replica catch-up replays this log, which
// respects both per-origin sequence order and the coordinator's serialization of
// conflicting operations.
struct LogRecord {
  int64_t op = 0;
  int origin = 0;
  int64_t seq = 0;
};

// [grant, release) window of one coordinated request, recorded by the omniscient safety
// checker independently of the coordinator's own bookkeeping.
struct GrantInterval {
  double granted_at = 0;
  double released_at = 0;
  std::string endpoint;
  int64_t op = -1;
};

}  // namespace

struct Simulator::Site {
  orm::Database db;
  bool down = false;
  int64_t epoch = 0;  // bumped at every restart; fences pre-crash incarnations
  int64_t next_effect_seq = 0;             // numbering of effects this site originates
  std::vector<int64_t> expected;           // next seq expected from each origin
  std::vector<std::map<int64_t, int64_t>> gap_buffer;  // origin -> seq -> op id
  size_t log_scan = 0;                     // prefix of the global log known applied here
  size_t log_covered = 0;                  // prefix of the global log applied (any path)
  std::set<int64_t> live_ops;              // in-flight requests originated here
  explicit Site(const soir::Schema* schema, int num_sites)
      : db(schema), expected(num_sites, 0), gap_buffer(num_sites) {}
};

Simulator::Simulator(const soir::Schema& schema, const std::vector<soir::CodePath>& paths,
                     ConflictTable conflicts, SimOptions options)
    : schema_(schema), paths_(paths), conflicts_(std::move(conflicts)), options_(options) {}

SimResult Simulator::Run() {
  obs::ScopedSpan run_span("simulate", obs::kCatSim);
  soir::Interp interp(schema_);
  WorkloadGenerator workload(schema_, paths_, options_.write_ratio, options_.seed);
  // All fault decisions draw from a dedicated stream so a zero-fault plan leaves the
  // workload's randomness — and therefore the perfect-network schedule — untouched.
  Rng fault_rng(options_.seed ^ 0xFA017BADC0FFEEULL);
  const bool enforce = options_.enforce.enabled;
  // Enforcement always runs the hardened protocol (retries, acks, epochs); the
  // perfect-network fast path stays reserved for unenforced zero-fault runs so the
  // seed model's Figure 10/11 schedule is untouched.
  const bool chaos = !options_.faults.IsZero() || enforce;
  const bool record_trace = options_.enforce.record_trace;

  // Replicas: identical seeded initial state, per-site striped ID allocation.
  std::vector<Site> sites;
  sites.reserve(options_.num_sites);
  orm::Database seeded(&schema_);
  WorkloadGenerator::SeedDatabase(&seeded, options_.seed_rows_per_model, options_.seed);
  for (int i = 0; i < options_.num_sites; ++i) {
    sites.emplace_back(&schema_, options_.num_sites);
    sites.back().db = seeded;
    sites.back().db.StripeNewIds(i, options_.num_sites);
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::map<int64_t, PendingOp> ops;
  int64_t next_op = 0;
  int64_t next_seq = 0;

  // Coordinator state: active op ids with their endpoint names, plus a FIFO wait queue.
  std::map<int64_t, std::string> active;
  std::vector<int64_t> waiting;

  std::vector<LogRecord> log;
  std::vector<GrantInterval> intervals;
  // Data-plane fencing watermark. Ack-held release guarantees that a conflicting
  // successor executes only after its predecessor's effect reached every live replica;
  // lease expiry, epoch fencing, and ack give-ups all bypass that handshake, so the
  // reclaimed holder's effect may still be in flight when the successor runs. Each
  // reclamation raises this watermark to the current log tail, and every later grant
  // carries it as a prerequisite: replicas apply the fenced effect only after covering
  // the log below the watermark, restoring the cross-site order the acks would have.
  int64_t fence_watermark = 0;

  SimResult result;
  std::vector<double> latencies;  // successful requests only (see SimResult contract)
  const int coordinator_site = 0;
  if (record_trace) {
    result.trace.Clear(options_.num_sites);
  }
  std::optional<LeaseCoordinator> coord;
  if (enforce) {
    coord.emplace(conflicts_, LeaseCoordinator::Options{options_.enforce.num_shards,
                                                        options_.enforce.lease_ms});
  }

  auto coord_delay = [&](int site) {
    return site == coordinator_site ? 0.0 : options_.cross_site_latency_ms;
  };
  auto push = [&](double time, EventKind kind, int64_t op, int site = -1, int client = -1,
                  uint8_t stage = 0, int attempt = 0, double stamp = 0) {
    queue.push(Event{time, kind, op, site, client, stage, attempt, stamp, next_seq++});
  };
  // Quiescence bound: no new transmissions once the drain grace expires, so retry chains
  // terminate and the event queue empties even under persistent faults.
  auto can_send = [&](double now) {
    return now <= options_.duration_ms + options_.drain_grace_ms;
  };
  auto backoff = [&](int attempts) {
    double t = options_.retry_timeout_ms;
    for (int i = 1; i < attempts; ++i) {
      t = std::min(t * options_.retry_backoff, options_.retry_timeout_cap_ms);
    }
    return std::min(t, options_.retry_timeout_cap_ms);
  };
  // Sends one protocol message over a (possibly faulty) link and schedules its arrivals.
  // `from`/`to` use kCoordinatorEndpoint for the coordination service side.
  auto transmit = [&](double now, int from, int to, double base_delay, EventKind kind,
                      int64_t op, int site_field = -1, double stamp = 0) {
    ++result.messages_sent;
    const LinkFaults& lf = options_.faults.LinkFor(from, to);
    MessageFate fate = options_.faults.SampleFate(lf, &fault_rng);
    if (fate.dropped) {
      ++result.messages_dropped;
      return;
    }
    if (fate.copies > 1) {
      ++result.messages_duplicated;
    }
    for (int copy = 0; copy < fate.copies; ++copy) {
      double extra = options_.faults.SampleExtraDelay(lf, &fault_rng);
      push(now + base_delay + extra, kind, op, site_field, -1, 0, 0, stamp);
    }
  };

  auto record_grant = [&](PendingOp& op, double now) {
    op.interval = static_cast<int>(intervals.size());
    op.interval_open = true;
    intervals.push_back({now, std::numeric_limits<double>::infinity(),
                         op.request.path->view_name, op.id});
  };
  auto record_release = [&](PendingOp& op, double now) {
    if (op.interval >= 0 && op.interval_open) {
      intervals[op.interval].released_at = now;
      op.interval_open = false;
    }
  };

  // Processes what one coordinator call produced: grants travel back to their origins
  // (paying the service-cost model), revocations close their omniscient windows, and
  // every armed lease gets an expiry sweep scheduled. Fencing rejections are counted by
  // the coordinator's own stats, copied into the result at the end of the run.
  auto handle_coord_outcome = [&](const LeaseCoordinator::Outcome& out, double now) {
    if (!out.expired.empty()) {
      // Locks were reclaimed without the release handshake; anything the dead holders
      // committed is at or below the current log tail, so grants from here on must not
      // let their effects overtake it anywhere.
      fence_watermark = static_cast<int64_t>(log.size());
    }
    for (int64_t id : out.expired) {
      record_release(ops.at(id), now);
    }
    for (int64_t id : out.granted) {
      PendingOp& gop = ops.at(id);
      gop.effect_prereq = std::max(gop.effect_prereq, fence_watermark);
      if (!gop.interval_open) {
        record_grant(gop, now);
      }
      double cost =
          options_.enforce.acquire_overhead_ms +
          options_.enforce.per_lock_overhead_ms *
              static_cast<double>(gop.degraded
                                      ? 1
                                      : coord->NumLocks(gop.request.path->view_name));
      transmit(now, kCoordinatorEndpoint, gop.site, coord_delay(gop.site) + cost,
               EventKind::kGrantArrive, gop.id);
      push(now + options_.enforce.lease_ms + 0.001, EventKind::kLeaseExpiryCheck, -1);
    }
  };

  // Admits every waiting op that conflicts with nothing active, in FIFO order.
  auto admit_waiters = [&](double now) {
    for (auto it = waiting.begin(); it != waiting.end();) {
      PendingOp& op = ops.at(*it);
      if (op.dead || op.phase == Phase::kGivenUp) {
        // A crashed or timed-out origin will never execute this request.
        op.coord = CoordState::kReleased;
        it = waiting.erase(it);
        continue;
      }
      const std::string& name = op.request.path->view_name;
      bool blocked = false;
      for (const auto& [_, other] : active) {
        if (conflicts_.Conflicts(name, other)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        ++it;
        continue;
      }
      op.coord = CoordState::kActive;
      active[op.id] = name;
      record_grant(op, now);
      if (chaos) {
        // Grant travels back over the faulty link; admission retries from the origin
        // cover a lost grant (the coordinator re-sends it on duplicate admission).
        transmit(now, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                 EventKind::kGrantArrive, op.id);
      } else {
        // Perfect network: grant travels back to the origin, then the op executes
        // (the seed model's combined event — keeps the schedule bit-identical).
        op.phase = Phase::kExecuting;
        push(now + coord_delay(op.site) + options_.local_exec_ms, EventKind::kExecute,
             op.id);
      }
      it = waiting.erase(it);
    }
  };

  auto start_release = [&](PendingOp& op, double now) {
    op.phase = Phase::kAwaitReleaseAck;
    op.release_attempts = 1;
    transmit(now, op.site, kCoordinatorEndpoint, coord_delay(op.site),
             EventKind::kReleaseArrive, op.id);
    push(now + backoff(op.release_attempts), EventKind::kRetryTimer, op.id, -1, -1,
         kStageRelease, op.release_attempts);
  };

  // Applies one committed effect at a replica and advances its per-origin cursor.
  auto apply_record = [&](int s, const PendingOp& op) {
    interp.Apply(*op.request.path, op.request.args, &sites[s].db);
    if (record_trace) {
      result.trace.site_order[s].push_back(op.id);
    }
  };
  // Replays every logged effect the site has not applied yet, in global commit order.
  // This is the anti-entropy / crash catch-up path; the log respects per-origin sequence
  // order and the coordinator's serialization of conflicting operations.
  auto catch_up = [&](int s) {
    Site& site = sites[s];
    for (size_t i = site.log_scan; i < log.size(); ++i) {
      const LogRecord& rec = log[i];
      if (rec.origin == s) {
        continue;  // own writes were applied at execution time
      }
      int64_t& expected = site.expected[rec.origin];
      if (rec.seq < expected) {
        continue;  // already applied via direct delivery
      }
      NOCTUA_CHECK_MSG(rec.seq == expected, "commit log has a per-origin gap");
      apply_record(s, ops.at(rec.op));
      ++expected;
      ++result.effects_replayed;
    }
    site.log_scan = log.size();
    // Buffered out-of-order deliveries below the cursor are now stale.
    for (int o = 0; o < options_.num_sites; ++o) {
      std::erase_if(site.gap_buffer[o],
                    [&](const auto& e) { return e.first < site.expected[o]; });
    }
  };

  // True once replica `s` has applied every global-log entry below `watermark`. Fenced
  // effects stay parked until then; the covered prefix only ever advances, so the check
  // resumes where it left off.
  auto fence_covered = [&](int s, int64_t watermark) {
    if (watermark <= 0) {
      return true;
    }
    Site& site = sites[s];
    while (site.log_covered < log.size()) {
      const LogRecord& rec = log[site.log_covered];
      if (rec.origin != s && rec.seq >= site.expected[rec.origin]) {
        break;
      }
      ++site.log_covered;
    }
    return static_cast<int64_t>(site.log_covered) >= watermark;
  };
  // Enforced-mode apply loop: drains every origin's buffer to a fixpoint, because
  // applying one origin's effect can advance the log coverage a fenced effect from a
  // *different* origin was waiting on.
  auto drain_site = [&](int s, double now) {
    Site& site = sites[s];
    bool progress = true;
    while (progress) {
      progress = false;
      for (int o = 0; o < options_.num_sites; ++o) {
        auto& buffer = site.gap_buffer[o];
        for (auto it = buffer.find(site.expected[o]); it != buffer.end();
             it = buffer.find(site.expected[o])) {
          PendingOp& next = ops.at(it->second);
          if (!fence_covered(s, next.effect_prereq)) {
            break;
          }
          apply_record(s, next);
          ++site.expected[o];
          transmit(now, s, o, options_.cross_site_latency_ms,
                   EventKind::kEffectAckArrive, next.id, s);
          buffer.erase(it);
          progress = true;
        }
      }
    }
  };
  // In-order delivery of one direct effect message at replica `s`, with idempotent
  // seq-based dedup and gap buffering. Acks every applied or already-applied effect.
  auto deliver_effect = [&](int s, PendingOp& op, double now) {
    Site& site = sites[s];
    int origin = op.site;
    int64_t& expected = site.expected[origin];
    if (op.effect_seq < expected) {
      ++result.duplicates_ignored;
      if (chaos) {  // re-ack: the origin may have missed the first ack
        transmit(now, s, origin, options_.cross_site_latency_ms,
                 EventKind::kEffectAckArrive, op.id, s);
      }
      return;
    }
    if (op.effect_seq > expected || !fence_covered(s, op.effect_prereq)) {
      auto [_, inserted] = site.gap_buffer[origin].insert({op.effect_seq, op.id});
      if (inserted) {
        if (op.effect_seq == expected) {
          ++result.fence_held_effects;  // in order, but fenced below the watermark
        } else {
          ++result.effect_gaps_buffered;
        }
      } else {
        ++result.duplicates_ignored;
      }
      return;
    }
    apply_record(s, op);
    ++expected;
    if (chaos) {
      transmit(now, s, origin, options_.cross_site_latency_ms, EventKind::kEffectAckArrive,
               op.id, s);
    }
    if (enforce) {
      drain_site(s, now);
      return;
    }
    // Drain any buffered successors that the gap was holding back.
    auto& buffer = site.gap_buffer[origin];
    auto it = buffer.find(expected);
    while (it != buffer.end()) {
      PendingOp& next = ops.at(it->second);
      apply_record(s, next);
      ++expected;
      if (chaos) {
        transmit(now, s, origin, options_.cross_site_latency_ms,
                 EventKind::kEffectAckArrive, next.id, s);
      }
      buffer.erase(it);
      it = buffer.find(expected);
    }
  };

  for (int s = 0; s < options_.num_sites; ++s) {
    for (int c = 0; c < options_.clients_per_site; ++c) {
      push(0.0, EventKind::kClientIssue, -1, s, c);
    }
  }
  if (chaos) {
    for (const CrashSchedule& crash : options_.faults.crashes) {
      NOCTUA_CHECK(crash.site >= 0 && crash.site < options_.num_sites);
      push(crash.at_ms, EventKind::kCrash, -1, crash.site);
      push(crash.restart_ms, EventKind::kRestart, -1, crash.site);
    }
    for (int s = 0; s < options_.num_sites; ++s) {
      push(options_.anti_entropy_interval_ms, EventKind::kAntiEntropy, -1, s);
    }
  }

  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    if (ev.time > options_.duration_ms && ev.kind == EventKind::kClientIssue) {
      continue;  // stop issuing; drain in-flight work
    }
    switch (ev.kind) {
      case EventKind::kClientIssue: {
        if (chaos && sites[ev.site].down) {
          break;  // the replica is down; its clients respawn on restart
        }
        PendingOp op;
        op.id = next_op++;
        op.site = ev.site;
        op.client = ev.client;
        op.request = workload.Next(&sites[ev.site].db);
        op.issued_at = ev.time;
        op.coordinated = options_.strong_consistency || op.request.is_write;
        ops[op.id] = std::move(op);
        PendingOp& ref = ops.at(next_op - 1);
        ref.epoch = sites[ref.site].epoch;
        if (enforce && ref.coordinated) {
          ref.home_shard = coord->HomeShard(ref.request.path->view_name);
        }
        if (chaos) {
          sites[ref.site].live_ops.insert(ref.id);
        }
        if (ref.coordinated) {
          if (chaos) {
            ref.admit_attempts = 1;
            if (enforce) {
              // Sound once a grant arrives: every admit was sent at or after now, so
              // any admission the service processed renewed the lease past this.
              ref.lease_deadline = ev.time + options_.enforce.lease_ms;
              // The renew chain runs from admission, covering the queued wait too;
              // confirmed renewals are the only thing that extends the deadline later.
              push(ev.time + options_.enforce.renew_interval_ms,
                   EventKind::kLeaseRenewTimer, ref.id);
            }
            transmit(ev.time, ref.site, kCoordinatorEndpoint, coord_delay(ref.site),
                     EventKind::kAdmitArrive, ref.id);
            push(ev.time + backoff(ref.admit_attempts), EventKind::kRetryTimer, ref.id,
                 -1, -1, kStageAdmit, ref.admit_attempts);
          } else {
            push(ev.time + coord_delay(ref.site), EventKind::kAdmitArrive, ref.id);
          }
        } else {
          ref.phase = Phase::kExecuting;
          push(ev.time + options_.local_exec_ms, EventKind::kExecute, ref.id);
        }
        break;
      }
      case EventKind::kAdmitArrive: {
        if (chaos && options_.faults.CoordinatorDown(ev.time)) {
          ++result.messages_dropped;  // the service processes nothing during an outage
          break;
        }
        if (enforce) {
          PendingOp& op = ops.at(ev.op);
          // No op.dead shortcut here: a real service cannot see origin death. A dead
          // op's registration is fenced by its successor epoch or reaped by its lease.
          if (!op.degraded &&
              options_.enforce.ShardDown(op.home_shard, ev.time)) {
            ++result.messages_dropped;  // this lock shard's request queue is down
            break;
          }
          LeaseCoordinator::Outcome out =
              coord->Acquire(op.id, op.request.path->view_name, op.site, op.epoch,
                             ev.time, op.degraded);
          handle_coord_outcome(out, ev.time);
          push(ev.time + options_.enforce.lease_ms + 0.001,
               EventKind::kLeaseExpiryCheck, -1);
          break;
        }
        PendingOp& op = ops.at(ev.op);
        if (op.dead) {
          break;
        }
        switch (op.coord) {
          case CoordState::kNone:
            op.coord = CoordState::kWaiting;
            waiting.push_back(op.id);
            admit_waiters(ev.time);
            break;
          case CoordState::kWaiting:
          case CoordState::kReleased:
            ++result.duplicates_ignored;
            break;
          case CoordState::kActive:
            // Retransmitted admission after a lost grant: re-send the grant. Granting is
            // idempotent — the origin executes at most once (phase check on arrival).
            ++result.duplicates_ignored;
            transmit(ev.time, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                     EventKind::kGrantArrive, op.id);
            break;
        }
        break;
      }
      case EventKind::kGrantArrive: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead) {
          break;
        }
        if (chaos && sites[op.site].down) {
          ++result.messages_dropped;
          break;
        }
        if (op.phase == Phase::kAwaitGrant) {
          op.phase = Phase::kExecuting;
          if (enforce) {
            obs::Observe(obs::Hist::kLeaseAcquireMicros,
                         static_cast<uint64_t>((ev.time - op.issued_at) * 1000.0));
            // The renew chain has been running since admission; no new one here.
          }
          push(ev.time + options_.local_exec_ms, EventKind::kExecute, op.id);
        } else if (op.phase == Phase::kGivenUp) {
          // The client moved on; free the coordination entry.
          if (can_send(ev.time)) {
            transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                     EventKind::kReleaseArrive, op.id);
          }
        } else {
          ++result.duplicates_ignored;  // duplicated grant: never execute twice
        }
        break;
      }
      case EventKind::kExecute: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead) {
          break;
        }
        if (enforce && op.coordinated && ev.time > op.lease_deadline) {
          // The conservative lease deadline has passed: the coordinator may have
          // reclaimed the locks and granted a conflicting successor, so executing now
          // would break the serialization. Go back to admission — if the registration
          // is in fact still live, the idempotent re-acquire renews it and re-grants.
          ++result.lease_laps;
          if (op.admit_attempts >= options_.max_retries || !can_send(ev.time)) {
            op.phase = Phase::kGivenUp;
            ++result.timed_out_requests;
            sites[op.site].live_ops.erase(op.id);
            push(ev.time, EventKind::kClientIssue, -1, op.site, op.client);
            break;
          }
          op.phase = Phase::kAwaitGrant;
          ++op.admit_attempts;
          ++result.retransmissions;
          transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                   EventKind::kAdmitArrive, op.id);
          push(ev.time + backoff(op.admit_attempts), EventKind::kRetryTimer, op.id, -1,
               -1, kStageAdmit, op.admit_attempts);
          break;
        }
        if (enforce && op.effect_prereq > 0 && !fence_covered(op.site, op.effect_prereq)) {
          // A fenced grant: sync with the commit log before writing, so a reclaimed
          // predecessor's effect is visible at the origin before this op overwrites it.
          catch_up(op.site);
          ++result.fence_log_syncs;
        }
        bool committed = interp.Run(*op.request.path, op.request.args, &sites[op.site].db);
        double done = ev.time;
        ++result.completed_requests;
        if (!committed) {
          ++result.aborted_requests;
        } else {
          latencies.push_back(done - op.issued_at);
        }
        if (chaos) {
          sites[op.site].live_ops.erase(op.id);  // the client got its response
        }
        if (op.request.is_write && committed) {
          ++result.committed_writes;
          op.effect_seq = sites[op.site].next_effect_seq++;
          if (record_trace) {
            result.trace.ops.push_back(
                {op.id, op.request.path->view_name, op.site, op.effect_seq});
            result.trace.site_order[op.site].push_back(op.id);
          }
          if (chaos) {
            log.push_back({op.id, op.site, op.effect_seq});
          }
          // Propagate the effect to every remote replica (asynchronous).
          for (int s = 0; s < options_.num_sites; ++s) {
            if (s != op.site) {
              if (chaos) {
                op.await_acks.insert(s);
                op.effect_attempts[s] = 1;
                transmit(ev.time, op.site, s, options_.cross_site_latency_ms,
                         EventKind::kEffectArrive, op.id, s);
                push(ev.time + backoff(1), EventKind::kRetryTimer, op.id, s, -1,
                     kStageEffect, 1);
              } else {
                push(ev.time + options_.cross_site_latency_ms, EventKind::kEffectArrive,
                     op.id, s);
              }
            }
          }
        }
        if (op.coordinated) {
          if (chaos) {
            // The coordination entry is held until every live replica acked the effect,
            // so conflicting operations apply in a single global order at all sites.
            if (op.await_acks.empty()) {
              start_release(op, ev.time);
            } else {
              op.phase = Phase::kAwaitAcks;
            }
          } else {
            // Perfect network: effects arrive one latency leg later, deterministically,
            // so the entry is released as soon as they have (the seed model).
            double propagated =
                committed && op.request.is_write ? options_.cross_site_latency_ms : 0.0;
            push(ev.time + propagated + coord_delay(op.site), EventKind::kReleaseArrive,
                 op.id);
            op.phase = Phase::kDone;
          }
        } else {
          op.phase = Phase::kDone;
        }
        // Closed loop: the client issues its next request.
        push(ev.time, EventKind::kClientIssue, -1, op.site, op.client);
        break;
      }
      case EventKind::kEffectArrive: {
        // Remote replicas apply the propagated mutations; guards were validated at the
        // origin (paper §2.1). Deliberately no `op.dead` check: a committed effect is
        // durable state even if its origin crashed afterwards.
        if (chaos && sites[ev.site].down) {
          ++result.messages_dropped;
          break;
        }
        deliver_effect(ev.site, ops.at(ev.op), ev.time);
        break;
      }
      case EventKind::kEffectAckArrive: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead) {
          break;
        }
        if (sites[op.site].down) {
          ++result.messages_dropped;
          break;
        }
        if (!op.acked.insert(ev.site).second) {
          ++result.duplicates_ignored;
          break;
        }
        op.await_acks.erase(ev.site);
        if (op.phase == Phase::kAwaitAcks && op.await_acks.empty()) {
          start_release(op, ev.time);
        }
        break;
      }
      case EventKind::kReleaseArrive: {
        if (chaos && options_.faults.CoordinatorDown(ev.time)) {
          ++result.messages_dropped;
          break;
        }
        if (enforce) {
          PendingOp& op = ops.at(ev.op);
          if (!op.degraded &&
              options_.enforce.ShardDown(op.home_shard, ev.time)) {
            ++result.messages_dropped;
            break;
          }
          LeaseCoordinator::Outcome out =
              coord->Release(op.id, op.site, op.epoch, ev.time);
          if (!out.fenced) {
            record_release(op, ev.time);
          }
          handle_coord_outcome(out, ev.time);
          // Release is idempotent; ack every copy so the origin can stop retrying.
          if (!out.fenced && can_send(ev.time)) {
            transmit(ev.time, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                     EventKind::kReleaseAckArrive, op.id);
          }
          break;
        }
        PendingOp& op = ops.at(ev.op);
        switch (op.coord) {
          case CoordState::kActive:
            op.coord = CoordState::kReleased;
            active.erase(op.id);
            record_release(op, ev.time);
            admit_waiters(ev.time);
            if (chaos && can_send(ev.time)) {
              transmit(ev.time, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                       EventKind::kReleaseAckArrive, op.id);
            }
            break;
          case CoordState::kWaiting:
            // The origin gave up before the grant was issued.
            op.coord = CoordState::kReleased;
            std::erase(waiting, op.id);
            break;
          case CoordState::kNone:
            op.coord = CoordState::kReleased;  // tombstone: a late admission is ignored
            break;
          case CoordState::kReleased:
            ++result.duplicates_ignored;
            if (chaos && can_send(ev.time)) {
              transmit(ev.time, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                       EventKind::kReleaseAckArrive, op.id);
            }
            break;
        }
        break;
      }
      case EventKind::kReleaseAckArrive: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead || sites[op.site].down) {
          break;
        }
        if (op.phase == Phase::kAwaitReleaseAck) {
          op.phase = Phase::kDone;
        } else {
          ++result.duplicates_ignored;
        }
        break;
      }
      case EventKind::kRetryTimer: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead) {
          break;
        }
        switch (ev.stage) {
          case kStageAdmit: {
            if (op.phase != Phase::kAwaitGrant || ev.attempt != op.admit_attempts) {
              break;  // the grant arrived, or a newer retry chain took over
            }
            if (enforce && !op.degraded &&
                op.admit_attempts >= options_.enforce.degrade_after_retries) {
              // The backoff budget for fine-grained admission is spent (typically a
              // downed lock shard): degrade this op to the service-global exclusive
              // latch — strong consistency for one op beats giving up.
              op.degraded = true;
            }
            if (op.admit_attempts >= options_.max_retries || !can_send(ev.time)) {
              op.phase = Phase::kGivenUp;
              ++result.timed_out_requests;
              sites[op.site].live_ops.erase(op.id);
              // Best-effort release in case a grant was issued and lost in transit.
              if (can_send(ev.time)) {
                transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                         EventKind::kReleaseArrive, op.id);
              }
              // The client observes a timeout error and moves on.
              push(ev.time, EventKind::kClientIssue, -1, op.site, op.client);
              break;
            }
            ++op.admit_attempts;
            ++result.retransmissions;
            transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                     EventKind::kAdmitArrive, op.id);
            push(ev.time + backoff(op.admit_attempts), EventKind::kRetryTimer, op.id, -1,
                 -1, kStageAdmit, op.admit_attempts);
            break;
          }
          case kStageEffect: {
            int target = ev.site;
            if (op.acked.count(target) || !op.await_acks.count(target) ||
                ev.attempt != op.effect_attempts[target]) {
              break;
            }
            if (op.effect_attempts[target] >= options_.max_retries ||
                !can_send(ev.time)) {
              // The replica is unreachable (typically crashed): release anyway; the
              // catch-up log replays this effect in order before it serves again.
              ++result.ack_giveups;
              if (enforce) {
                // The release below skips the full ack handshake, so successors must
                // not overtake this effect at the replica that never acked it.
                fence_watermark = static_cast<int64_t>(log.size());
              }
              op.await_acks.erase(target);
              if (op.phase == Phase::kAwaitAcks && op.await_acks.empty()) {
                start_release(op, ev.time);
              }
              break;
            }
            ++op.effect_attempts[target];
            ++result.retransmissions;
            transmit(ev.time, op.site, target, options_.cross_site_latency_ms,
                     EventKind::kEffectArrive, op.id, target);
            push(ev.time + backoff(op.effect_attempts[target]), EventKind::kRetryTimer,
                 op.id, target, -1, kStageEffect, op.effect_attempts[target]);
            break;
          }
          case kStageRelease: {
            if (op.phase != Phase::kAwaitReleaseAck ||
                ev.attempt != op.release_attempts) {
              break;
            }
            if (op.release_attempts >= options_.max_retries || !can_send(ev.time)) {
              op.phase = Phase::kDone;  // assume the coordinator processed one release
              break;
            }
            ++op.release_attempts;
            ++result.retransmissions;
            transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                     EventKind::kReleaseArrive, op.id);
            push(ev.time + backoff(op.release_attempts), EventKind::kRetryTimer, op.id,
                 -1, -1, kStageRelease, op.release_attempts);
            break;
          }
        }
        break;
      }
      case EventKind::kCrash: {
        Site& site = sites[ev.site];
        if (site.down) {
          break;
        }
        site.down = true;
        ++result.replica_crashes;
        for (int64_t id : site.live_ops) {
          // Requests still awaiting a grant or execution are lost with the process.
          PendingOp& op = ops.at(id);
          op.dead = true;
          if (op.phase == Phase::kAwaitGrant || op.phase == Phase::kExecuting) {
            ++result.crash_lost_requests;
          }
        }
        site.live_ops.clear();
        // Executed-but-unreleased requests also died; their origin will never send the
        // release, so mark the whole cohort dead and let the failure detector evict.
        for (auto& [id, op] : ops) {
          if (op.site == ev.site && op.phase != Phase::kDone &&
              op.phase != Phase::kGivenUp) {
            op.dead = true;
          }
        }
        if (!enforce) {
          // Enforced mode has no omniscient failure detector: the dead cohort's locks
          // are reclaimed by lease expiry (or fenced away by the restart epoch).
          push(ev.time + options_.crash_lease_ms, EventKind::kEvictCrashed, -1, ev.site);
        }
        break;
      }
      case EventKind::kEvictCrashed: {
        // The coordinator's failure detector: drop every grant and admission held by
        // requests that died with the crashed replica, unblocking their conflicts.
        if (options_.faults.CoordinatorDown(ev.time)) {
          // The service itself is down; detection resumes after the outage.
          push(ev.time + options_.crash_lease_ms, EventKind::kEvictCrashed, -1, ev.site);
          break;
        }
        std::vector<int64_t> evict;
        for (const auto& [id, _] : active) {
          PendingOp& op = ops.at(id);
          if (op.dead && op.site == ev.site) {
            evict.push_back(id);
          }
        }
        for (int64_t id : evict) {
          PendingOp& op = ops.at(id);
          active.erase(id);
          op.coord = CoordState::kReleased;
          record_release(op, ev.time);
        }
        std::erase_if(waiting, [&](int64_t id) {
          PendingOp& op = ops.at(id);
          if (op.dead && op.site == ev.site) {
            op.coord = CoordState::kReleased;
            return true;
          }
          return false;
        });
        admit_waiters(ev.time);
        break;
      }
      case EventKind::kRestart: {
        Site& site = sites[ev.site];
        if (!site.down) {
          break;
        }
        site.down = false;
        ++site.epoch;  // the new incarnation; the coordinator fences the old one away
        ++result.replica_recoveries;
        // Anti-entropy catch-up: replay every missed effect in commit order before
        // serving clients again (restart-from-disk plus log sync).
        catch_up(ev.site);
        double ready = ev.time + options_.cross_site_latency_ms;  // sync round trip
        for (int c = 0; c < options_.clients_per_site; ++c) {
          push(ready, EventKind::kClientIssue, -1, ev.site, c);
        }
        break;
      }
      case EventKind::kAntiEntropy: {
        if (ev.time > options_.duration_ms + options_.drain_grace_ms) {
          break;  // stop the background schedule so the queue can drain
        }
        if (!sites[ev.site].down) {
          catch_up(ev.site);
        }
        push(ev.time + options_.anti_entropy_interval_ms, EventKind::kAntiEntropy, -1,
             ev.site);
        break;
      }
      case EventKind::kLeaseRenewTimer: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead || sites[op.site].down || !can_send(ev.time)) {
          break;  // the chain dies with the op / the horizon
        }
        if (op.phase != Phase::kAwaitGrant && op.phase != Phase::kExecuting &&
            op.phase != Phase::kAwaitAcks) {
          break;  // release is on its way; let the lease lapse if that gets lost
        }
        transmit(ev.time, op.site, kCoordinatorEndpoint, coord_delay(op.site),
                 EventKind::kRenewArrive, op.id, -1, ev.time);
        push(ev.time + options_.enforce.renew_interval_ms, EventKind::kLeaseRenewTimer,
             op.id);
        break;
      }
      case EventKind::kRenewArrive: {
        if (options_.faults.CoordinatorDown(ev.time)) {
          ++result.messages_dropped;
          break;
        }
        PendingOp& op = ops.at(ev.op);
        if (!op.degraded && options_.enforce.ShardDown(op.home_shard, ev.time)) {
          ++result.messages_dropped;
          break;
        }
        LeaseCoordinator::Outcome out = coord->Renew(op.id, op.site, op.epoch, ev.time);
        handle_coord_outcome(out, ev.time);
        if (out.renewed && can_send(ev.time)) {
          // Confirm with the renewal's original send time: the origin extends its
          // conservative deadline from that stamp, which the service's own extension
          // (taken at arrival, never earlier) is guaranteed to dominate.
          transmit(ev.time, kCoordinatorEndpoint, op.site, coord_delay(op.site),
                   EventKind::kRenewAckArrive, op.id, -1, ev.stamp);
        }
        break;
      }
      case EventKind::kRenewAckArrive: {
        PendingOp& op = ops.at(ev.op);
        if (op.dead || sites[op.site].down) {
          break;
        }
        op.lease_deadline =
            std::max(op.lease_deadline, ev.stamp + options_.enforce.lease_ms);
        break;
      }
      case EventKind::kLeaseExpiryCheck: {
        if (options_.faults.CoordinatorDown(ev.time) && can_send(ev.time)) {
          // The whole service is out; its failure detector resumes afterwards.
          push(ev.time + options_.retry_timeout_ms, EventKind::kLeaseExpiryCheck, -1);
          break;
        }
        LeaseCoordinator::Outcome out = coord->ExpireDue(ev.time);
        handle_coord_outcome(out, ev.time);
        break;
      }
    }
  }

  // Quiescence sync: faults have stopped; anti-entropy finishes healing every replica
  // (including one that crashed and never restarted inside the horizon) before the
  // convergence verdict.
  if (chaos) {
    for (int s = 0; s < options_.num_sites; ++s) {
      catch_up(s);
    }
  }

  result.duration_ms = options_.duration_ms;
  if (!latencies.empty()) {
    double total = 0;
    for (double l : latencies) {
      total += l;
    }
    result.avg_latency_ms = total / latencies.size();
    std::sort(latencies.begin(), latencies.end());
    size_t idx = (latencies.size() * 99 + 99) / 100;  // ceil(0.99 n)
    result.p99_latency_ms = latencies[std::min(idx, latencies.size()) - 1];
  }

  // Omniscient safety check: sweep the [grant, release) windows and count overlapping
  // conflicting pairs. Independent of the coordinator's own dedup/eviction bookkeeping,
  // so protocol bugs (double grants, leaked entries) show up here.
  std::vector<int> order(intervals.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return intervals[a].granted_at != intervals[b].granted_at
               ? intervals[a].granted_at < intervals[b].granted_at
               : a < b;
  });
  std::vector<int> open;
  for (int i : order) {
    std::erase_if(open, [&](int j) {
      return intervals[j].released_at <= intervals[i].granted_at;
    });
    for (int j : open) {
      if (conflicts_.Conflicts(intervals[i].endpoint, intervals[j].endpoint)) {
        ++result.conflict_violations;
      }
    }
    open.push_back(i);
  }

  std::set<int> order_models;
  for (const soir::CodePath& p : paths_) {
    std::set<int> m = soir::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }
  result.converged = true;
  for (int s = 1; s < options_.num_sites; ++s) {
    result.converged = result.converged && sites[0].db.SameState(sites[s].db, order_models);
  }

  if (coord) {
    const LeaseCoordinator::Stats& cs = coord->stats();
    result.lease_acquires = cs.acquires;
    result.lease_grants = cs.grants;
    result.lease_expiries = cs.expiries;
    result.fencing_rejections = cs.fencing_rejections;
    result.degradations = cs.degradations;
    result.lock_waits = cs.lock_waits;
  }

  if (obs::Enabled()) {
    // One-shot flush of the run's message/fault/recovery counters — the event loop
    // itself carries no instrumentation.
    obs::Add(obs::Counter::kSimRequestsCompleted, result.completed_requests);
    obs::Add(obs::Counter::kSimMessagesSent, result.messages_sent);
    obs::Add(obs::Counter::kSimMessagesDropped, result.messages_dropped);
    obs::Add(obs::Counter::kSimRetransmissions, result.retransmissions);
    obs::Add(obs::Counter::kSimDuplicatesIgnored, result.duplicates_ignored);
    obs::Add(obs::Counter::kSimEffectsReplayed, result.effects_replayed);
    obs::Add(obs::Counter::kSimReplicaCrashes, result.replica_crashes);
    obs::Add(obs::Counter::kSimReplicaRecoveries, result.replica_recoveries);
    obs::Add(obs::Counter::kSimConflictViolations, result.conflict_violations);
    obs::Add(obs::Counter::kSimLeaseAcquires, result.lease_acquires);
    obs::Add(obs::Counter::kSimLeaseExpiries, result.lease_expiries);
    obs::Add(obs::Counter::kSimFencingRejections, result.fencing_rejections);
    obs::Add(obs::Counter::kSimDegradations, result.degradations);
    obs::Add(obs::Counter::kSimFenceHeldEffects, result.fence_held_effects);
    run_span.Arg("requests", result.completed_requests);
    run_span.Arg("messages", result.messages_sent);
    run_span.Arg("converged", result.converged ? 1 : 0);
  }
  return result;
}

}  // namespace noctua::repl
