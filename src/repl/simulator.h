// Discrete-event geo-replication simulator for the end-to-end experiment (paper §6.5,
// Figures 10 and 11).
//
// The deployment mirrors the paper's: N sites (3 in the experiment), each holding a full
// database replica, plus a centralized coordination service that maintains the set of
// currently active operations and admits an operation only when no conflicting operation
// is active. Under PoR consistency the conflict relation is the restriction set computed
// by the verifier, lifted to HTTP endpoints (the paper's simplification: "we did not use
// the full analysis results, but only consider the HTTP endpoints"); under the strong
// consistency (SC) baseline every request — including read-only ones — conflicts with
// every other.
//
// Requests are issued by closed-loop clients at each site. Reads execute locally and
// immediately. Writes acquire admission from the coordinator (one network round trip when
// the coordinator is remote, plus queueing for conflicts), execute locally, and their
// effects propagate asynchronously to the other replicas, where the extracted SOIR path
// is re-executed (operation replication, §2.1).
//
// Two network regimes:
//   * `SimOptions::faults.IsZero()` (the default) — the paper's perfect network: fixed
//     cross-site latency, lossless ordered delivery, no failures. This fast path
//     reproduces the seed model's event schedule exactly, so the Figure 10/11 numbers
//     are unaffected by the fault layer.
//   * A non-zero FaultPlan switches on the hardened protocol: admission/release/effect
//     messages are sent over faulty links with capped exponential-backoff retries and
//     op-id idempotent dedup; propagated effects carry per-origin sequence numbers
//     consumed through a gap-detecting apply queue; effect delivery is acked per replica
//     and the coordination entry is held until every live replica acked (preserving the
//     single global order of conflicting operations); crashed replicas freeze their
//     state, are evicted from the coordinator after a failure-detection lease, and on
//     restart catch up from the committed-effect log via anti-entropy before serving
//     clients again. Periodic anti-entropy also heals deliveries that exhausted their
//     retries, and a final quiescence sync closes any remaining gaps before the
//     convergence check.
#ifndef SRC_REPL_SIMULATOR_H_
#define SRC_REPL_SIMULATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/repl/coord.h"
#include "src/repl/fault.h"
#include "src/repl/trace_check.h"
#include "src/repl/workload.h"
#include "src/soir/interp.h"

namespace noctua::repl {

// Pairs of endpoint names that must not run concurrently.
class ConflictTable {
 public:
  void AddPair(const std::string& a, const std::string& b);
  bool Conflicts(const std::string& a, const std::string& b) const;
  // Strong consistency: everything conflicts (overrides the pair set).
  void SetTotal(bool total) { total_ = total; }
  bool total() const { return total_; }
  size_t size() const { return pairs_.size(); }
  // Removes one pair (order-insensitive); true when it was present. The mutation knob
  // for oracle testing: dropping a computed restriction must be detected downstream.
  bool RemovePair(const std::string& a, const std::string& b);
  // Canonicalized pair set (each pair stored with first <= second).
  const std::set<std::pair<std::string, std::string>>& pairs() const { return pairs_; }

 private:
  std::set<std::pair<std::string, std::string>> pairs_;
  bool total_ = false;
};

// Conservative endpoint-level conflict table from syntactic footprints: two endpoints
// conflict when one writes a model the other touches, or when they touch a common
// relation. This over-approximates the verifier's restriction set lifted to endpoints
// (the verifier's independence pre-filter proves exactly the complement disjoint), so it
// is always safe to coordinate with; the chaos harness uses it for apps whose full SMT
// verification is too slow for a unit test.
ConflictTable ConservativeConflicts(const soir::Schema& schema,
                                    const std::vector<soir::CodePath>& paths);

struct SimOptions {
  int num_sites = 3;
  int clients_per_site = 8;
  double cross_site_latency_ms = 1.0;  // the paper's injected 1 ms
  double local_exec_ms = 0.05;         // request execution cost at a replica
  double duration_ms = 2000;
  double write_ratio = 0.5;
  // SC mode: every request (including reads) is coordinated (paper's baseline).
  bool strong_consistency = false;
  int seed_rows_per_model = 10;
  uint64_t seed = 42;

  // --- Fault injection & recovery protocol (ignored when `faults.IsZero()`) ------------
  FaultPlan faults;                    // what goes wrong; default: perfect network
  double retry_timeout_ms = 6.0;       // initial retransmission timeout
  double retry_backoff = 2.0;          // timeout multiplier per attempt
  double retry_timeout_cap_ms = 48.0;  // backoff ceiling
  int max_retries = 10;                // retransmissions per message before giving up
  double anti_entropy_interval_ms = 25.0;  // per-replica background sync period
  double crash_lease_ms = 30.0;  // failure-detection delay before the coordinator evicts
                                 // grants held by a crashed replica's requests
  double drain_grace_ms = 300.0;  // no new transmissions after duration + grace, so the
                                  // event queue quiesces even under persistent faults

  // --- Runtime enforcement (see src/repl/coord.h) --------------------------------------
  // When `enforce.enabled`, admission runs through the sharded lease-based
  // LeaseCoordinator (epoch fencing, lease expiry, degradation) over the hardened
  // chaos-mode protocol, and `enforce.record_trace` makes the run record the per-site
  // operation history that trace_check.h validates offline. `record_trace` also works
  // without enforcement (to audit the omniscient coordinator itself).
  EnforceOptions enforce;
};

// Counter definitions (the accounting contract relied on by tests and benches):
//   * completed_requests — requests that finished at their origin: committed ones plus
//     guard failures. The throughput basis.
//   * aborted_requests — the guard-failure (HTTP 4xx) subset of completed_requests.
//     Their latency is EXCLUDED from avg/p99_latency_ms: the latency statistics describe
//     successful responses only, so an abort-heavy workload cannot silently skew them.
//   * timed_out_requests / crash_lost_requests — requests that never completed (admission
//     retries exhausted, or in flight on a replica when it crashed). Disjoint from
//     completed_requests.
struct SimResult {
  uint64_t completed_requests = 0;
  uint64_t committed_writes = 0;
  uint64_t aborted_requests = 0;  // guard failures (HTTP 4xx)
  double duration_ms = 0;
  double avg_latency_ms = 0;  // mean user-perceived latency of successful requests
  double p99_latency_ms = 0;  // 99th percentile of the same distribution
  bool converged = false;  // replicas reached the same state after quiescence

  // --- Fault / recovery counters (all zero on the perfect-network fast path) -----------
  uint64_t timed_out_requests = 0;   // gave up after max_retries admission attempts
  uint64_t crash_lost_requests = 0;  // in-flight requests killed by a replica crash
  uint64_t messages_sent = 0;        // transmissions, including retries and dup copies
  uint64_t messages_dropped = 0;     // lost to link faults, outages, or down replicas
  uint64_t messages_duplicated = 0;  // extra copies created by faulty links
  uint64_t retransmissions = 0;      // timeout-driven resends
  uint64_t duplicates_ignored = 0;   // deliveries discarded by op-id / seq-number dedup
  uint64_t effect_gaps_buffered = 0; // out-of-order effects parked by the apply queue
  uint64_t effects_replayed = 0;     // effects applied via anti-entropy / catch-up sync
  uint64_t ack_giveups = 0;          // per-replica effect delivery abandoned (crash)
  uint64_t replica_crashes = 0;
  uint64_t replica_recoveries = 0;
  // Omniscient safety check, independent of the coordinator's own bookkeeping: the
  // number of conflicting operation pairs whose [grant, release) windows overlapped.
  // Must be zero — a non-zero value means the protocol let restriction-set-conflicting
  // operations run concurrently.
  uint64_t conflict_violations = 0;

  // --- Enforcement counters (all zero unless SimOptions::enforce.enabled) --------------
  uint64_t lease_acquires = 0;      // admission registrations the coordinator accepted
  uint64_t lease_grants = 0;        // grants issued (including idempotent re-sends)
  uint64_t lease_expiries = 0;      // registrations reaped by lease expiry / fencing
  uint64_t fencing_rejections = 0;  // stale-epoch messages the coordinator rejected
  uint64_t degradations = 0;        // ops that fell back to the exclusive latch
  uint64_t lock_waits = 0;          // times an op queued on a busy pair-lock
  uint64_t fence_held_effects = 0;  // watermarked effects parked until log coverage
  uint64_t fence_log_syncs = 0;     // fenced grants that synced with the log pre-execute
  uint64_t lease_laps = 0;          // origin-side lease checks that failed at execute

  // Recorded per-site apply history (populated when enforce.record_trace); feed to
  // CheckTrace with the *full* restriction set to validate the run offline.
  ExecutionTrace trace;

  double ThroughputOpsPerSec() const {
    return duration_ms > 0 ? completed_requests / (duration_ms / 1000.0) : 0;
  }
};

class Simulator {
 public:
  Simulator(const soir::Schema& schema, const std::vector<soir::CodePath>& paths,
            ConflictTable conflicts, SimOptions options);

  SimResult Run();

 private:
  struct Site;
  const soir::Schema& schema_;
  const std::vector<soir::CodePath>& paths_;
  ConflictTable conflicts_;
  SimOptions options_;
};

}  // namespace noctua::repl

#endif  // SRC_REPL_SIMULATOR_H_
