// Discrete-event geo-replication simulator for the end-to-end experiment (paper §6.5,
// Figures 10 and 11).
//
// The deployment mirrors the paper's: N sites (3 in the experiment), each holding a full
// database replica, plus a centralized coordination service that maintains the set of
// currently active operations and admits an operation only when no conflicting operation
// is active. Under PoR consistency the conflict relation is the restriction set computed
// by the verifier, lifted to HTTP endpoints (the paper's simplification: "we did not use
// the full analysis results, but only consider the HTTP endpoints"); under the strong
// consistency (SC) baseline every request — including read-only ones — conflicts with
// every other.
//
// Requests are issued by closed-loop clients at each site. Reads execute locally and
// immediately. Writes acquire admission from the coordinator (one network round trip when
// the coordinator is remote, plus queueing for conflicts), execute locally, and their
// effects propagate asynchronously to the other replicas, where the extracted SOIR path
// is re-executed (operation replication, §2.1).
#ifndef SRC_REPL_SIMULATOR_H_
#define SRC_REPL_SIMULATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/repl/workload.h"
#include "src/soir/interp.h"

namespace noctua::repl {

// Pairs of endpoint names that must not run concurrently.
class ConflictTable {
 public:
  void AddPair(const std::string& a, const std::string& b);
  bool Conflicts(const std::string& a, const std::string& b) const;
  // Strong consistency: everything conflicts (overrides the pair set).
  void SetTotal(bool total) { total_ = total; }
  bool total() const { return total_; }
  size_t size() const { return pairs_.size(); }

 private:
  std::set<std::pair<std::string, std::string>> pairs_;
  bool total_ = false;
};

struct SimOptions {
  int num_sites = 3;
  int clients_per_site = 8;
  double cross_site_latency_ms = 1.0;  // the paper's injected 1 ms
  double local_exec_ms = 0.05;         // request execution cost at a replica
  double duration_ms = 2000;
  double write_ratio = 0.5;
  // SC mode: every request (including reads) is coordinated (paper's baseline).
  bool strong_consistency = false;
  int seed_rows_per_model = 10;
  uint64_t seed = 42;
};

struct SimResult {
  uint64_t completed_requests = 0;
  uint64_t committed_writes = 0;
  uint64_t aborted_requests = 0;  // guard failures (HTTP 4xx)
  double duration_ms = 0;
  double avg_latency_ms = 0;
  bool converged = false;  // replicas reached the same state after quiescence

  double ThroughputOpsPerSec() const {
    return duration_ms > 0 ? completed_requests / (duration_ms / 1000.0) : 0;
  }
};

class Simulator {
 public:
  Simulator(const soir::Schema& schema, const std::vector<soir::CodePath>& paths,
            ConflictTable conflicts, SimOptions options);

  SimResult Run();

 private:
  struct Site;
  const soir::Schema& schema_;
  const std::vector<soir::CodePath>& paths_;
  ConflictTable conflicts_;
  SimOptions options_;
};

}  // namespace noctua::repl

#endif  // SRC_REPL_SIMULATOR_H_
