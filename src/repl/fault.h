// Fault-injection plans for the geo-replication simulator.
//
// A FaultPlan describes everything that can go wrong on the simulated network and
// machines: per-link message drop/duplication/reorder probabilities, latency jitter and
// heavy-tailed spikes, replica crash+restart schedules, and coordinator outage windows.
// The plan itself is pure data — every probabilistic decision is sampled from the
// simulator's dedicated fault Rng, so a (plan, seed) pair fully determines the fault
// schedule and every chaos run is reproducible.
//
// A default-constructed plan injects nothing; `Simulator` detects that case
// (`IsZero()`) and runs the paper's perfect-network model unchanged.
#ifndef SRC_REPL_FAULT_H_
#define SRC_REPL_FAULT_H_

#include <map>
#include <utility>
#include <vector>

#include "src/support/rng.h"

namespace noctua::repl {

// Endpoint id used in link keys for the centralized coordination service.
inline constexpr int kCoordinatorEndpoint = -1;

// Fault characteristics of one directed link. All probabilities are per message copy.
struct LinkFaults {
  double drop = 0;       // message lost in transit
  double duplicate = 0;  // link delivers a second copy (independently delayed)
  double reorder = 0;    // message displaced by an extra uniform delay (overtaking)
  double reorder_window_ms = 2.0;  // displacement bound for reordered messages
  double jitter_ms = 0;  // uniform extra latency in [0, jitter_ms) on every message
  double spike = 0;      // probability of a heavy-tailed latency spike
  double spike_mean_ms = 0;  // exponential mean of the spike magnitude

  bool IsZero() const {
    return drop == 0 && duplicate == 0 && reorder == 0 && jitter_ms == 0 && spike == 0;
  }
};

// One replica failure: the site stops at `at_ms` (in-flight requests are lost, its
// replica state is frozen as of the crash — restart-from-disk semantics) and comes back
// at `restart_ms`, when it catches up on missed effects via anti-entropy before serving
// clients again. `restart_ms` may lie past the simulation horizon, modeling a replica
// that never recovers during the run (the final quiescence sync still heals its state).
struct CrashSchedule {
  int site = 0;
  double at_ms = 0;
  double restart_ms = 0;
};

// A window during which the coordination service processes nothing: admission and
// release messages arriving inside [start_ms, end_ms) are lost and must be retried.
struct OutageWindow {
  double start_ms = 0;
  double end_ms = 0;
};

// The sampled fate of one message transmission.
struct MessageFate {
  bool dropped = false;
  int copies = 1;  // 2 when the link duplicated the message
};

struct FaultPlan {
  // Faults applied to every link unless overridden for a specific directed pair.
  LinkFaults link;
  // Per-link overrides keyed by (from, to); kCoordinatorEndpoint denotes the
  // coordination service side.
  std::map<std::pair<int, int>, LinkFaults> link_overrides;
  std::vector<CrashSchedule> crashes;
  std::vector<OutageWindow> coordinator_outages;

  // True when the plan injects nothing at all — the simulator then takes the
  // perfect-network fast path and must reproduce the seed model bit-for-bit.
  bool IsZero() const;

  // Whether the coordinator is inside an outage window at time t.
  bool CoordinatorDown(double t_ms) const;

  const LinkFaults& LinkFor(int from, int to) const;

  // Samples drop/duplication for one transmission on the given link.
  MessageFate SampleFate(const LinkFaults& link_faults, Rng* rng) const;
  // Samples the extra delay (jitter + reorder displacement + spike) for one copy.
  double SampleExtraDelay(const LinkFaults& link_faults, Rng* rng) const;

  // --- Presets used by the chaos harness and benches ------------------------------------
  static FaultPlan None() { return FaultPlan{}; }
  // Lossy network: messages dropped / duplicated with the given probabilities.
  static FaultPlan Lossy(double drop, double duplicate = 0.0);
  // Slow, unordered network: uniform jitter plus occasional exponential spikes.
  static FaultPlan Jittery(double jitter_ms, double reorder, double spike,
                           double spike_mean_ms);
  // One replica crash+restart on an otherwise slightly lossy network.
  static FaultPlan CrashRestart(int site, double at_ms, double restart_ms,
                                double drop = 0.0);
  // Coordinator unreachable during [start_ms, end_ms).
  static FaultPlan CoordinatorOutage(double start_ms, double end_ms, double drop = 0.0);
};

}  // namespace noctua::repl

#endif  // SRC_REPL_FAULT_H_
